package experiments

import (
	"fmt"
	"io"
	"strconv"

	"silenttracker/internal/antenna"
	"silenttracker/internal/campaign"
	"silenttracker/internal/geom"
	"silenttracker/internal/stats"
)

// CodebookRow is one row of the codebook-size sweep: how directional
// search latency scales with the number of receive beams. The paper's
// introduction cites 1.28 s for 5G initial search — exactly a 64-beam
// codebook at the 20 ms sweep period; this experiment shows where that
// number comes from and what the paper's 18-beam mobile pays instead.
type CodebookRow struct {
	Beams   int
	HPBWDeg float64
	Success stats.Rate
	Dwells  stats.Sample // over successful searches
	MsP50   float64      // derived: dwells × sweep period
	MsMax   float64
	FullMs  float64 // worst-case exhaustive scan (beams × sweep period)
}

// CodebookOpts configures the sweep.
type CodebookOpts struct {
	Sizes   []int
	Trials  int
	Seed    int64
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultCodebookOpts returns the full sweep, ending at the 5G-like
// 64-beam configuration.
func DefaultCodebookOpts() CodebookOpts {
	return CodebookOpts{
		Sizes:  []int{6, 12, 18, 36, 64},
		Trials: 60,
		Seed:   8000,
	}
}

// CodebookCampaign declares the codebook-size sweep as a campaign
// spec: one axis (the number of receive beams), the Fig. 2a search
// trial with a generated ring codebook as the unit body.
func CodebookCampaign(opts CodebookOpts) *campaign.Spec {
	sizes := make([]string, len(opts.Sizes))
	for i, n := range opts.Sizes {
		sizes[i] = strconv.Itoa(n)
	}
	return &campaign.Spec{
		Name:        "codebook",
		Description: "codebook-size sweep: search latency scaling toward the 5G 64-beam, 1.28 s scan",
		Axes: []campaign.Axis{
			{Name: "beams", Values: sizes},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 7919,
		Epoch:      "codebook/v1",
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			n := cell.Int("beams")
			b := EdgeBuilder(seed)
			b.UEBook = antenna.NewRingCodebook(
				fmt.Sprintf("mobile-%d", n), n, geom.Deg(360.0/float64(n)), antenna.ModelGaussian)
			b.Mob = MobilityFor(Walk, seed)
			ok, dwells := searchTrialWith(b, DefaultFig2aOpts())
			m := campaign.NewMetrics()
			m.Record("ok", ok)
			if ok {
				m.Add("dwells", float64(dwells))
			}
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteCodebook(w, CodebookRows(cells))
		},
	}
}

// CodebookRows folds campaign cells back into the table's row structs.
func CodebookRows(cells []campaign.CellResult) []CodebookRow {
	out := make([]CodebookRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		n := c.Cell.Int("beams")
		row := CodebookRow{
			Beams:   n,
			HPBWDeg: 360.0 / float64(n),
			Success: c.Rate("ok"),
			Dwells:  c.Sample("dwells"),
		}
		row.MsP50 = row.Dwells.Median() * 20
		row.MsMax = row.Dwells.Quantile(1) * 20
		row.FullMs = float64(n) * 20
		out = append(out, row)
	}
	return out
}

// RunCodebook regenerates the codebook-size sweep under the human-walk
// workload.
func RunCodebook(opts CodebookOpts) []CodebookRow {
	return CodebookRows(campaign.Collect(CodebookCampaign(opts), opts.Workers))
}

// WriteCodebook renders the sweep.
func WriteCodebook(w io.Writer, rows []CodebookRow) {
	fmt.Fprintln(w, "Codebook-size sweep — search latency scaling (human walk)")
	fmt.Fprintln(w, "(the paper cites 1.28 s for 5G initial search: a 64-beam exhaustive scan)")
	fmt.Fprintf(w, "%-7s %7s %9s %10s %10s %10s %12s\n",
		"beams", "HPBW", "success", "dwells p50", "p50 (ms)", "max (ms)", "full scan")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %6.1f° %8.1f%% %10.1f %10.0f %10.0f %9.0f ms\n",
			r.Beams, r.HPBWDeg, r.Success.Percent(), r.Dwells.Median(),
			r.MsP50, r.MsMax, r.FullMs)
	}
}
