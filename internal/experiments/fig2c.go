package experiments

import (
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/handover"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// Fig2cSeries is one CDF curve of the paper's Fig. 2c: the time from
// the start of the neighbor search to the successful conclusion of the
// soft handover, under one mobility scenario.
type Fig2cSeries struct {
	Scenario  Scenario
	Trials    int
	Completed int          // trials whose first handover concluded
	SoftCount int          // of those, how many stayed soft
	Latency   stats.Sample // milliseconds, one point per completed trial
	Dwells    stats.Sample // beam-search dwells of the preceding search
	Interrupt stats.Sample // interruption ms (0 for clean soft handovers)
}

// Fig2cOpts configures the Fig. 2c run.
type Fig2cOpts struct {
	Trials  int
	Seed    int64
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultFig2cOpts returns the full-fidelity settings.
func DefaultFig2cOpts() Fig2cOpts {
	return Fig2cOpts{Trials: 200, Seed: 2000}
}

// Fig2cQuick returns reduced-trial options for tests and smoke runs.
func Fig2cQuick(trials int) Fig2cOpts {
	o := DefaultFig2cOpts()
	o.Trials = trials
	return o
}

// Fig2cCampaign declares Fig. 2c as a campaign spec: one axis (the
// mobility scenario), the handover trial as the unit body.
func Fig2cCampaign(opts Fig2cOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "fig2c",
		Description: "soft handover completion time CDF per mobility scenario (narrow codebook)",
		Axes: []campaign.Axis{
			{Name: "scenario", Values: ScenarioNames()},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 104729,
		Epoch:      "fig2c/v1",
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			rec, ok := HandoverTrial(ScenarioNamed(cell.Get("scenario")), seed)
			m := campaign.NewMetrics()
			m.Record("completed", ok)
			if ok {
				m.Record("soft", rec.Kind == handover.Soft)
				m.Add("latency_ms", rec.Latency().Millis())
				m.Add("dwells", float64(rec.Dwells))
				m.Add("interrupt_ms", rec.Interruption.Millis())
			}
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteFig2c(w, Fig2cSeriesOf(cells, opts.Trials))
		},
	}
}

// Fig2cSeriesOf folds campaign cells back into the CDF series.
func Fig2cSeriesOf(cells []campaign.CellResult, trials int) []Fig2cSeries {
	out := make([]Fig2cSeries, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, Fig2cSeries{
			Scenario:  ScenarioNamed(c.Cell.Get("scenario")),
			Trials:    trials,
			Completed: c.Rate("completed").Successes,
			SoftCount: c.Rate("soft").Successes,
			Latency:   c.Sample("latency_ms"),
			Dwells:    c.Sample("dwells"),
			Interrupt: c.Sample("interrupt_ms"),
		})
	}
	return out
}

// RunFig2c regenerates the paper's Fig. 2c: per-scenario CDFs of soft
// handover completion time with the narrow (20°) codebook.
func RunFig2c(opts Fig2cOpts) []Fig2cSeries {
	return Fig2cSeriesOf(campaign.Collect(Fig2cCampaign(opts), opts.Workers), opts.Trials)
}

// HandoverTrial runs one Fig. 2c scenario instance to its first
// completed handover.
func HandoverTrial(sc Scenario, seed int64) (handover.Record, bool) {
	w := EdgeWorld(sc, Narrow, seed)
	aud := handover.NewAuditor(1, 0)
	w.Tracker.SetEventHook(aud.Hook(nil))
	horizon := HorizonFor(sc)
	for w.Engine.Now() < horizon && aud.Completed() == 0 {
		w.Run(w.Engine.Now() + 100*sim.Millisecond)
	}
	return aud.First()
}

// CompletionRate returns the fraction of trials whose handover
// concluded — the CDF's asymptote.
func (s Fig2cSeries) CompletionRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Trials)
}

// CDF samples the series' latency ECDF on a shared grid (milliseconds)
// matching the paper's 400–1800 ms axis, scaled by the completion
// rate so incomplete trials keep the curve below 1.
func (s *Fig2cSeries) CDF(loMs, hiMs float64, points int) []stats.ECDFPoint {
	grid := s.Latency.ECDFGrid(loMs, hiMs, points)
	scale := s.CompletionRate()
	for i := range grid {
		grid[i].P *= scale
	}
	return grid
}
