package experiments

import (
	"silenttracker/internal/handover"
	"silenttracker/internal/runner"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// Fig2cSeries is one CDF curve of the paper's Fig. 2c: the time from
// the start of the neighbor search to the successful conclusion of the
// soft handover, under one mobility scenario.
type Fig2cSeries struct {
	Scenario  Scenario
	Trials    int
	Completed int          // trials whose first handover concluded
	SoftCount int          // of those, how many stayed soft
	Latency   stats.Sample // milliseconds, one point per completed trial
	Dwells    stats.Sample // beam-search dwells of the preceding search
	Interrupt stats.Sample // interruption ms (0 for clean soft handovers)
}

// Fig2cOpts configures the Fig. 2c run.
type Fig2cOpts struct {
	Trials  int
	Seed    int64
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultFig2cOpts returns the full-fidelity settings.
func DefaultFig2cOpts() Fig2cOpts {
	return Fig2cOpts{Trials: 200, Seed: 2000}
}

// Fig2cQuick returns reduced-trial options for tests and smoke runs.
func Fig2cQuick(trials int) Fig2cOpts {
	o := DefaultFig2cOpts()
	o.Trials = trials
	return o
}

// RunFig2c regenerates the paper's Fig. 2c: per-scenario CDFs of soft
// handover completion time with the narrow (20°) codebook.
func RunFig2c(opts Fig2cOpts) []Fig2cSeries {
	type result struct {
		rec handover.Record
		ok  bool
	}
	out := make([]Fig2cSeries, 0, 3)
	for _, sc := range AllScenarios() {
		series := Fig2cSeries{Scenario: sc, Trials: opts.Trials}
		runner.Fold(opts.Trials, opts.Workers,
			func(i int) result {
				seed := opts.Seed + int64(i)*104729
				rec, ok := HandoverTrial(sc, seed)
				return result{rec, ok}
			},
			func(_ int, r result) {
				if !r.ok {
					return
				}
				series.Completed++
				if r.rec.Kind == handover.Soft {
					series.SoftCount++
				}
				series.Latency.Add(r.rec.Latency().Millis())
				series.Dwells.Add(float64(r.rec.Dwells))
				series.Interrupt.Add(r.rec.Interruption.Millis())
			})
		out = append(out, series)
	}
	return out
}

// HandoverTrial runs one Fig. 2c scenario instance to its first
// completed handover.
func HandoverTrial(sc Scenario, seed int64) (handover.Record, bool) {
	w := EdgeWorld(sc, Narrow, seed)
	aud := handover.NewAuditor(1, 0)
	w.Tracker.SetEventHook(aud.Hook(nil))
	horizon := HorizonFor(sc)
	for w.Engine.Now() < horizon && aud.Completed() == 0 {
		w.Run(w.Engine.Now() + 100*sim.Millisecond)
	}
	return aud.First()
}

// CompletionRate returns the fraction of trials whose handover
// concluded — the CDF's asymptote.
func (s Fig2cSeries) CompletionRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Trials)
}

// CDF samples the series' latency ECDF on a shared grid (milliseconds)
// matching the paper's 400–1800 ms axis, scaled by the completion
// rate so incomplete trials keep the curve below 1.
func (s *Fig2cSeries) CDF(loMs, hiMs float64, points int) []stats.ECDFPoint {
	grid := s.Latency.ECDFGrid(loMs, hiMs, points)
	scale := s.CompletionRate()
	for i := range grid {
		grid[i].P *= scale
	}
	return grid
}
