package experiments

import "silenttracker/internal/campaign"

// CampaignParams are the cross-experiment knobs the stcampaign CLI
// exposes. Zero values select each experiment's full-fidelity
// defaults; Quick substitutes the smoke-run trial counts (the same
// reductions stbench -quick applies). Because trial seeds depend only
// on (spec, trial index), a quick run's units are a prefix of the
// full run's — a full sweep after a quick one computes just the
// delta.
type CampaignParams struct {
	Quick  bool
	Seed   int64 // 0 = per-experiment default
	Trials int   // 0 = default (after the Quick reduction)
}

// quickTrials is the single source of the smoke-run trial counts,
// keyed by campaign name; stbench's -quick uses the same numbers via
// QuickTrials.
var quickTrials = map[string]int{
	"fig2a":      25,
	"fig2c":      20,
	"mobility":   10,
	"threshold":  6,
	"hysteresis": 6,
	"baseline":   6,
	"patterns":   8,
	"codebook":   8,
	"urban":      2,
	"highway":    3,
	"hotspot":    3,
}

// QuickTrials returns the -quick trial count for the named campaign.
func QuickTrials(name string) int {
	n, ok := quickTrials[name]
	if !ok {
		panic("experiments: no quick trial count for " + name)
	}
	return n
}

func (p CampaignParams) trials(name string, full int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick {
		return QuickTrials(name)
	}
	return full
}

// CampaignDef names one registered campaign and builds its spec.
type CampaignDef struct {
	Name  string
	Build func(p CampaignParams) *campaign.Spec
}

// Campaigns returns every registered campaign — the eight paper
// experiments plus the three scenario-generated families (urban,
// highway, hotspot) — in stbench's canonical order.
func Campaigns() []CampaignDef {
	return []CampaignDef{
		{"fig2a", func(p CampaignParams) *campaign.Spec {
			opts := DefaultFig2aOpts()
			opts.Trials = p.trials("fig2a", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return Fig2aCampaign(opts)
		}},
		{"fig2c", func(p CampaignParams) *campaign.Spec {
			opts := DefaultFig2cOpts()
			opts.Trials = p.trials("fig2c", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return Fig2cCampaign(opts)
		}},
		{"mobility", func(p CampaignParams) *campaign.Spec {
			opts := DefaultMobilityOpts()
			opts.Trials = p.trials("mobility", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return MobilityCampaign(opts)
		}},
		{"threshold", func(p CampaignParams) *campaign.Spec {
			opts := DefaultThresholdOpts()
			opts.Trials = p.trials("threshold", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return ThresholdCampaign(opts)
		}},
		{"hysteresis", func(p CampaignParams) *campaign.Spec {
			opts := DefaultHysteresisOpts()
			opts.Trials = p.trials("hysteresis", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return HysteresisCampaign(opts)
		}},
		{"baseline", func(p CampaignParams) *campaign.Spec {
			opts := DefaultBaselineOpts()
			opts.Trials = p.trials("baseline", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return BaselineCampaign(opts)
		}},
		{"patterns", func(p CampaignParams) *campaign.Spec {
			opts := DefaultPatternOpts()
			opts.Trials = p.trials("patterns", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return PatternsCampaign(opts)
		}},
		{"codebook", func(p CampaignParams) *campaign.Spec {
			opts := DefaultCodebookOpts()
			opts.Trials = p.trials("codebook", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return CodebookCampaign(opts)
		}},
		{"urban", func(p CampaignParams) *campaign.Spec {
			opts := DefaultUrbanOpts()
			opts.Trials = p.trials("urban", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return UrbanCampaign(opts)
		}},
		{"highway", func(p CampaignParams) *campaign.Spec {
			opts := DefaultHighwayOpts()
			opts.Trials = p.trials("highway", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return HighwayCampaign(opts)
		}},
		{"hotspot", func(p CampaignParams) *campaign.Spec {
			opts := DefaultHotspotOpts()
			opts.Trials = p.trials("hotspot", opts.Trials)
			if p.Seed != 0 {
				opts.Seed = p.Seed
			}
			return HotspotCampaign(opts)
		}},
	}
}
