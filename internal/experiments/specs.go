package experiments

import (
	"io"

	"silenttracker/internal/campaign"
)

// CampaignParams are the cross-experiment knobs the stcampaign CLI
// exposes. Zero values select each experiment's full-fidelity
// defaults; Quick substitutes the smoke-run trial counts (the same
// reductions stbench -quick applies). Because trial seeds depend only
// on (spec, trial index), a quick run's units are a prefix of the
// full run's — a full sweep after a quick one computes just the
// delta.
type CampaignParams struct {
	Quick  bool
	Seed   int64 // 0 = per-experiment default
	Trials int   // 0 = default (after the Quick reduction)
}

// quickTrials is the single source of the smoke-run trial counts,
// keyed by campaign name; stbench's -quick uses the same numbers via
// QuickTrials.
var quickTrials = map[string]int{
	"fig2a":      25,
	"fig2c":      20,
	"mobility":   10,
	"threshold":  6,
	"hysteresis": 6,
	"baseline":   6,
	"patterns":   8,
	"codebook":   8,
	"urban":      2,
	"highway":    3,
	"hotspot":    3,
}

// QuickTrials returns the -quick trial count for the named campaign.
func QuickTrials(name string) int {
	n, ok := quickTrials[name]
	if !ok {
		panic("experiments: no quick trial count for " + name)
	}
	return n
}

func (p CampaignParams) trials(name string, full int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick {
		return QuickTrials(name)
	}
	return full
}

// CampaignDef names one registered campaign and builds its spec.
// Beyond Build (the sweep itself), a def carries everything a
// presentation layer needs: the stbench-era alias and banner title,
// the typed Table fold (results.go), and — where the experiment has a
// raw-sample form — a CSV renderer. The st package is the public face
// of this registry; the CLIs are shells over st.
type CampaignDef struct {
	Name string
	// Alias is the stbench-era experiment name ("" when identical to
	// Name), e.g. "ablation-threshold" for "threshold".
	Alias string
	// Title is the banner headline stbench prints above the table.
	Title string
	Build func(p CampaignParams) *campaign.Spec
	// Table folds cells into the experiment's typed summary table.
	Table func(cells []campaign.CellResult, p CampaignParams) Table
	// CSV writes the experiment's raw samples as CSV (nil when the
	// experiment has no CSV form).
	CSV func(w io.Writer, cells []campaign.CellResult, p CampaignParams)
}

// BenchName returns the stbench-era name (the alias when set).
func (d *CampaignDef) BenchName() string {
	if d.Alias != "" {
		return d.Alias
	}
	return d.Name
}

// CampaignNamed returns the registered campaign with the given
// canonical name or stbench alias, and whether one exists.
func CampaignNamed(name string) (CampaignDef, bool) {
	for _, def := range Campaigns() {
		if def.Name == name || def.Alias == name {
			return def, true
		}
	}
	return CampaignDef{}, false
}

// Campaigns returns every registered campaign — the eight paper
// experiments plus the three scenario-generated families (urban,
// highway, hotspot) — in stbench's canonical order.
//
// This registry is the canonical execution path: the public st
// package (and through it both CLIs) runs experiments exclusively via
// these defs. The per-experiment Run* wrappers (RunFig2a … RunHotspot)
// are the internal convenience form of the same specs — thin
// Collect+fold shorthands kept for this package's tests and the root
// benchmarks; they share the spec builders and row folds with the
// defs, so they cannot drift from what the registry runs.
func Campaigns() []CampaignDef {
	return []CampaignDef{
		{
			Name:  "fig2a",
			Title: "Figure 2a — directional search under mobility",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultFig2aOpts()
				opts.Trials = p.trials("fig2a", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return Fig2aCampaign(opts)
			},
			Table: Fig2aTable,
			CSV: func(w io.Writer, cells []campaign.CellResult, p CampaignParams) {
				WriteFig2aCSV(w, Fig2aRows(cells, p.trials("fig2a", DefaultFig2aOpts().Trials)))
			},
		},
		{
			Name:  "fig2c",
			Title: "Figure 2c — soft handover completion time CDF",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultFig2cOpts()
				opts.Trials = p.trials("fig2c", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return Fig2cCampaign(opts)
			},
			Table: Fig2cTable,
			CSV: func(w io.Writer, cells []campaign.CellResult, p CampaignParams) {
				WriteFig2cCSV(w, Fig2cSeriesOf(cells, p.trials("fig2c", DefaultFig2cOpts().Trials)))
			},
		},
		{
			Name:  "mobility",
			Title: "Alignment held until handover conclusion (§3 claim)",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultMobilityOpts()
				opts.Trials = p.trials("mobility", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return MobilityCampaign(opts)
			},
			Table: MobilityTable,
		},
		{
			Name:  "threshold",
			Alias: "ablation-threshold",
			Title: "Ablation — handover margin T",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultThresholdOpts()
				opts.Trials = p.trials("threshold", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return ThresholdCampaign(opts)
			},
			Table: ThresholdTable,
		},
		{
			Name:  "hysteresis",
			Alias: "ablation-hysteresis",
			Title: "Ablation — adjacent-switch trigger (3 dB rule)",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultHysteresisOpts()
				opts.Trials = p.trials("hysteresis", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return HysteresisCampaign(opts)
			},
			Table: HysteresisTable,
		},
		{
			Name:  "baseline",
			Title: "Baseline comparison — soft vs reactive vs genie",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultBaselineOpts()
				opts.Trials = p.trials("baseline", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return BaselineCampaign(opts)
			},
			Table: BaselineTable,
		},
		{
			Name:  "patterns",
			Alias: "ablation-pattern",
			Title: "Ablation — beam pattern model (Gaussian vs ULA)",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultPatternOpts()
				opts.Trials = p.trials("patterns", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return PatternsCampaign(opts)
			},
			Table: PatternsTable,
		},
		{
			Name:  "codebook",
			Alias: "ablation-codebook",
			Title: "Codebook-size sweep — where 1.28 s comes from",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultCodebookOpts()
				opts.Trials = p.trials("codebook", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return CodebookCampaign(opts)
			},
			Table: CodebookTable,
		},
		{
			Name:  "urban",
			Title: "Urban hex grid — handover storms under a mixed fleet",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultUrbanOpts()
				opts.Trials = p.trials("urban", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return UrbanCampaign(opts)
			},
			Table: UrbanTable,
		},
		{
			Name:  "highway",
			Title: "Highway corridor — alignment hold duration vs speed",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultHighwayOpts()
				opts.Trials = p.trials("highway", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return HighwayCampaign(opts)
			},
			Table: HighwayTable,
		},
		{
			Name:  "hotspot",
			Title: "Hotspot ring — silent tracking under a blocker field",
			Build: func(p CampaignParams) *campaign.Spec {
				opts := DefaultHotspotOpts()
				opts.Trials = p.trials("hotspot", opts.Trials)
				if p.Seed != 0 {
					opts.Seed = p.Seed
				}
				return HotspotCampaign(opts)
			},
			Table: HotspotTable,
		},
	}
}
