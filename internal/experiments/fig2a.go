package experiments

import (
	"fmt"
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/core"
	"silenttracker/internal/rng"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
	"silenttracker/internal/world"
)

// Fig2aRow is one bar group of the paper's Fig. 2a: directional
// neighbor-cell search under human walk at the cell edge, for one
// mobile codebook configuration.
type Fig2aRow struct {
	Config BeamConfig
	Trials int

	// Search success rate (right panel): the fraction of search
	// procedures that confirm a usable neighbor beam within the
	// deadline and hold it for the verification window.
	Success stats.Rate

	// Search latency in beam searches, i.e. receive-beam dwells of one
	// sweep period each (left panel), over successful searches.
	Dwells stats.Sample

	// Search latency in milliseconds (derived; one dwell = 20 ms).
	LatencyMs stats.Sample
}

// Fig2aOpts configures the Fig. 2a run.
type Fig2aOpts struct {
	Trials  int   // search procedures per configuration
	Seed    int64 // base seed
	Workers int   // trial parallelism (0 = GOMAXPROCS); never changes results

	// ScanBudget bounds one search procedure at this many complete
	// codebook sweeps (dwell budget = ScanBudget × codebook size).
	// A procedure that has swept every receive beam twice without
	// confirming a cell has failed — this is what makes "success rate"
	// comparable across codebooks of different sizes.
	ScanBudget int

	Verify sim.Time // found beam must survive this long to count
}

// DefaultFig2aOpts returns the full-fidelity settings.
func DefaultFig2aOpts() Fig2aOpts {
	return Fig2aOpts{
		Trials:     150,
		Seed:       1000,
		ScanBudget: 2,
		Verify:     100 * sim.Millisecond,
	}
}

// Fig2aCampaign declares Fig. 2a as a campaign spec: one axis (the
// mobile codebook configuration), the search trial as the unit body.
func Fig2aCampaign(opts Fig2aOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "fig2a",
		Description: "directional neighbor search under human walk: success rate and latency per codebook",
		Axes: []campaign.Axis{
			{Name: "config", Values: []string{"Narrow", "Wide", "Omni"}},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 7919,
		Epoch:      "fig2a/v1",
		Config:     fmt.Sprintf("budget=%d,verify=%d", opts.ScanBudget, opts.Verify),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			ok, dwells := SearchTrial(BeamConfigNamed(cell.Get("config")), seed, opts)
			m := campaign.NewMetrics()
			m.Record("ok", ok)
			if ok {
				m.Add("dwells", float64(dwells))
				m.Add("latency_ms", float64(dwells)*20)
			}
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteFig2a(w, Fig2aRows(cells, opts.Trials))
		},
	}
}

// Fig2aRows folds campaign cells back into the table's row structs.
func Fig2aRows(cells []campaign.CellResult, trials int) []Fig2aRow {
	rows := make([]Fig2aRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		rows = append(rows, Fig2aRow{
			Config:    BeamConfigNamed(c.Cell.Get("config")),
			Trials:    trials,
			Success:   c.Rate("ok"),
			Dwells:    c.Sample("dwells"),
			LatencyMs: c.Sample("latency_ms"),
		})
	}
	return rows
}

// RunFig2a regenerates both panels of Fig. 2a. Trials shard across
// the campaign engine's runner pool; rows are identical at any
// Workers value.
func RunFig2a(opts Fig2aOpts) []Fig2aRow {
	return Fig2aRows(campaign.Collect(Fig2aCampaign(opts), opts.Workers), opts.Trials)
}

// SearchTrial runs a single Fig. 2a search procedure under the
// paper's human-walk scenario and reports whether it succeeded and
// how many receive-beam dwells it took.
func SearchTrial(cfgB BeamConfig, seed int64, opts Fig2aOpts) (success bool, dwells int) {
	b := EdgeBuilder(seed)
	b.UEBook = cfgB.Book()
	b.Mob = MobilityFor(Walk, seed)
	return searchTrialWith(b, opts)
}

// searchTrialWith runs a search procedure on an already-configured
// scenario builder (shared by SearchTrial and the pattern ablation).
func searchTrialWith(b *world.Builder, opts Fig2aOpts) (success bool, dwells int) {
	w := b.Build()
	budget := opts.ScanBudget * b.UEBook.Size()
	// The dwell clock runs in sweep periods; the search itself starts
	// after the first serving burst, so pad the wall-clock deadline.
	deadline := sim.Time(budget)*w.Tracker.Cfg.SweepPeriod + 100*sim.Millisecond

	var foundAt sim.Time = sim.Never
	var lostAfter sim.Time = sim.Never
	w.Tracker.SetEventHook(func(e core.Event) {
		switch e.Type {
		case core.EvNeighborFound:
			if foundAt == sim.Never {
				foundAt = e.At
				dwells = int(e.Value)
			}
		case core.EvNeighborLost:
			if foundAt != sim.Never && lostAfter == sim.Never {
				lostAfter = e.At
			}
		}
	})

	// Run until the verification window after discovery, or the
	// deadline.
	for w.Engine.Now() < deadline+opts.Verify {
		w.Run(w.Engine.Now() + 50*sim.Millisecond)
		if foundAt != sim.Never && w.Engine.Now() >= foundAt+opts.Verify {
			break
		}
	}
	if foundAt == sim.Never || dwells > budget {
		return false, 0
	}
	// Verification: the beam must not be lost within the window —
	// a sidelobe ghost "discovery" dies immediately.
	if lostAfter != sim.Never && lostAfter-foundAt < opts.Verify {
		return false, 0
	}
	return true, dwells
}

// Fig2aQuick returns reduced-trial options for tests and smoke runs.
func Fig2aQuick(trials int) Fig2aOpts {
	o := DefaultFig2aOpts()
	o.Trials = trials
	return o
}

// ShuffledSeeds is a helper for experiments that want decorrelated
// trial seeds.
func ShuffledSeeds(base int64, n int) []int64 {
	src := rng.Stream(base, "experiments/seeds")
	out := make([]int64, n)
	for i := range out {
		out[i] = src.Int63()
	}
	return out
}
