package experiments

import (
	"fmt"
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/geom"
	"silenttracker/internal/handover"
	"silenttracker/internal/mobility"
	"silenttracker/internal/netem"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// Variant names a beam-management strategy for the baseline
// comparison.
type Variant int

// The compared strategies.
const (
	// SilentTracker is the paper's protocol: silent neighbor tracking
	// begun proactively at the cell edge.
	SilentTracker Variant = iota
	// Reactive is the omnidirectional-era strategy the paper argues
	// against: do nothing until the serving link dies, then search.
	Reactive
	// Genie is the lower bound: an oracle hands the tracker the
	// neighbor's beam pair at t=0 with no search at all.
	Genie
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case SilentTracker:
		return "SilentTracker"
	case Reactive:
		return "Reactive"
	default:
		return "Genie"
	}
}

// VariantNamed parses a Variant from its String form.
func VariantNamed(name string) Variant {
	switch name {
	case "SilentTracker":
		return SilentTracker
	case "Reactive":
		return Reactive
	case "Genie":
		return Genie
	}
	panic("experiments: unknown variant " + name)
}

// BaselineRow summarises one strategy over the baseline workload.
type BaselineRow struct {
	Variant Variant
	Trials  int

	HandoverOK  stats.Rate   // first handover concluded within the horizon
	HardRate    stats.Rate   // handovers that were hard
	LatencyMs   stats.Sample // first-handover latency (search start → done)
	InterruptMs stats.Sample // total interruption per trial
	LossRate    stats.Sample // packet loss fraction per trial
	OutageMs    stats.Sample // longest outage per trial

	// RecoveryMs is the total interruption over trials that suffered at
	// least one serving-link death — the moment of truth the strategies
	// differ on: an aligned silent beam recovers in one RACH exchange,
	// a reactive mobile must search first.
	RecoveryMs stats.Sample
}

// BaselineOpts configures the comparison.
type BaselineOpts struct {
	Trials  int
	Seed    int64
	Horizon sim.Time
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultBaselineOpts returns the full comparison: the mobile walks
// out of cell 1's coverage (a 14 m soft range edge models mm-wave
// corner loss), so the serving link *permanently* dies mid-walk and
// each strategy's recovery path is what gets measured.
func DefaultBaselineOpts() BaselineOpts {
	return BaselineOpts{Trials: 40, Seed: 6000, Horizon: 8 * sim.Second}
}

// BaselineCampaign declares the strategy comparison as a campaign
// spec: one axis (the beam-management strategy), the walk-out-of-
// coverage workload as the unit body.
func BaselineCampaign(opts BaselineOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "baseline",
		Description: "strategy comparison (SilentTracker vs Reactive vs Genie) on a coverage-exit walk",
		Axes: []campaign.Axis{
			{Name: "variant", Values: []string{"SilentTracker", "Reactive", "Genie"}},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 179426549,
		Epoch:      "baseline/v1",
		Config:     fmt.Sprintf("horizon=%d", opts.Horizon),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			var t BaselineRow
			oneBaselineTrial(VariantNamed(cell.Get("variant")), seed, opts.Horizon, &t)
			m := campaign.NewMetrics()
			m.Record("ho_ok", t.HandoverOK.Successes > 0)
			if t.HardRate.Trials > 0 {
				m.Record("hard", t.HardRate.Successes > 0)
			}
			m.Add("latency_ms", t.LatencyMs.Raw()...)
			m.Add("interrupt_ms", t.InterruptMs.Raw()...)
			m.Add("loss_rate", t.LossRate.Raw()...)
			m.Add("outage_ms", t.OutageMs.Raw()...)
			m.Add("recovery_ms", t.RecoveryMs.Raw()...)
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteBaseline(w, BaselineRows(cells, opts.Trials))
		},
	}
}

// BaselineRows folds campaign cells back into the table's row structs.
func BaselineRows(cells []campaign.CellResult, trials int) []BaselineRow {
	out := make([]BaselineRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, BaselineRow{
			Variant:     VariantNamed(c.Cell.Get("variant")),
			Trials:      trials,
			HandoverOK:  c.Rate("ho_ok"),
			HardRate:    c.Rate("hard"),
			LatencyMs:   c.Sample("latency_ms"),
			InterruptMs: c.Sample("interrupt_ms"),
			LossRate:    c.Sample("loss_rate"),
			OutageMs:    c.Sample("outage_ms"),
			RecoveryMs:  c.Sample("recovery_ms"),
		})
	}
	return out
}

// RunBaseline regenerates the strategy comparison table.
func RunBaseline(opts BaselineOpts) []BaselineRow {
	return BaselineRows(campaign.Collect(BaselineCampaign(opts), opts.Workers), opts.Trials)
}

// RunBaselineVariant runs the baseline workload for one strategy.
func RunBaselineVariant(v Variant, opts BaselineOpts) BaselineRow {
	spec := BaselineCampaign(opts)
	spec.Axes[0].Values = []string{v.String()}
	rows := BaselineRows(campaign.Collect(spec, opts.Workers), opts.Trials)
	return rows[0]
}

func oneBaselineTrial(v Variant, seed int64, horizon sim.Time, row *BaselineRow) {
	b := EdgeBuilder(seed)
	// Walk from inside cell 1 out through its coverage edge: the
	// serving link dies for good at x ≈ 16–17 m.
	j := jitter(seed)
	b.Mob = walkFrom(j.Uniform(6.5, 7.5), j.Uniform(-0.8, 0.8), seed)
	b.Specs[0].RangeLimit = 14
	switch v {
	case SilentTracker:
		// Defaults: AlwaysSearch at the edge.
	case Reactive:
		b.Cfg.AlwaysSearch = false
		b.Cfg.EdgeRSSdBm = -300 // never search proactively
	case Genie:
		b.Cfg.AlwaysSearch = false
		b.Cfg.EdgeRSSdBm = -300
	}
	w := b.Build()
	if v == Genie {
		// The oracle hands over the neighbor's beam pair immediately.
		ci := w.Device.Cells[2]
		tx, rx := ci.Link.BestBeamsOracle(ci.Pose, w.Device.Pose(0))
		rss := w.P.Channel.MeanRSSdBm(
			ci.Pose.Pos.Dist(w.Device.Pose(0).Pos),
			ci.Book.GainDB(tx, ci.Pose.BearingTo(w.Device.Pose(0).Pos)),
			w.Device.Book.GainDB(rx, w.Device.Pose(0).LocalBearingTo(ci.Pose.Pos)),
		)
		w.Tracker.ForceTrack(0, 2, tx, rx, rss)
	}

	aud := handover.NewAuditor(1, 0)
	w.Tracker.SetEventHook(aud.Hook(nil))
	flow := netem.Attach(w, sim.Millisecond)
	for w.Engine.Now() < horizon {
		w.Run(w.Engine.Now() + 200*sim.Millisecond)
	}
	flow.Stop()

	first, ok := aud.First()
	row.HandoverOK.Record(ok)
	if ok {
		row.HardRate.Record(first.Kind == handover.Hard)
		row.LatencyMs.Add(first.Latency().Millis())
	}
	row.InterruptMs.Add(aud.TotalInterruption().Millis())
	row.LossRate.Add(flow.LossRate())
	row.OutageMs.Add(flow.LongestOutage.Millis())
	if sawServingDeath(aud) {
		row.RecoveryMs.Add(aud.TotalInterruption().Millis())
	}
}

func sawServingDeath(aud *handover.Auditor) bool {
	for _, r := range aud.Records {
		if r.Interruption > 0 {
			return true
		}
	}
	return false
}

// walkFrom builds the baseline walk at a custom start.
func walkFrom(x, y float64, seed int64) mobility.Model {
	j := jitter(seed + 1)
	return mobility.NewWalk(geom.V(x, y), j.Uniform(-0.08, 0.08), seed)
}
