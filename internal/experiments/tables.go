package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteFig2a renders both panels of Fig. 2a as text tables.
func WriteFig2a(w io.Writer, rows []Fig2aRow) {
	fmt.Fprintln(w, "Fig. 2a (left) — Search latency under human walk (number of beam searches)")
	fmt.Fprintf(w, "%-8s %8s %8s %8s %8s %10s\n", "Config", "mean", "median", "p90", "max", "trials(ok)")
	for _, r := range rows {
		if r.Config == Omni {
			continue // the paper plots latency for Narrow and Wide only
		}
		fmt.Fprintf(w, "%-8s %8.1f %8.1f %8.1f %8.0f %6d(%d)\n",
			r.Config, r.Dwells.Mean(), r.Dwells.Median(),
			r.Dwells.Quantile(0.9), r.Dwells.Quantile(1), r.Trials, r.Dwells.N())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 2a (right) — Search success rate (%)")
	fmt.Fprintf(w, "%-8s %10s %18s\n", "Config", "success", "95% CI")
	for _, r := range rows {
		lo, hi := r.Success.WilsonCI()
		fmt.Fprintf(w, "%-8s %9.1f%% %8.1f%%–%.1f%%\n",
			r.Config, r.Success.Percent(), 100*lo, 100*hi)
	}
}

// WriteFig2aCSV emits the raw latency samples for plotting.
func WriteFig2aCSV(w io.Writer, rows []Fig2aRow) {
	fmt.Fprintln(w, "config,dwells")
	for _, r := range rows {
		for _, v := range r.Dwells.Values() {
			fmt.Fprintf(w, "%s,%g\n", r.Config, v)
		}
	}
}

// WriteFig2c renders the per-scenario CDF summary plus a shared-grid
// CDF table matching the paper's 400–1800 ms axis.
func WriteFig2c(w io.Writer, series []Fig2cSeries) {
	fmt.Fprintln(w, "Fig. 2c — Soft handover completion time (search start → access complete)")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s %9s %6s\n",
		"Scenario", "p10(ms)", "p50(ms)", "p90(ms)", "max(ms)", "done", "soft", "dwells")
	for _, s := range series {
		fmt.Fprintf(w, "%-10s %8.0f %8.0f %8.0f %8.0f %7.0f%% %7d %6.1f\n",
			s.Scenario, s.Latency.Quantile(0.1), s.Latency.Median(),
			s.Latency.Quantile(0.9), s.Latency.Quantile(1),
			100*s.CompletionRate(), s.SoftCount, s.Dwells.Mean())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "CDF grid (P[latency <= t]):")
	fmt.Fprintf(w, "%8s", "t(ms)")
	for _, s := range series {
		fmt.Fprintf(w, "%12s", s.Scenario)
	}
	fmt.Fprintln(w)
	const lo, hi, pts = 200.0, 2000.0, 10
	grids := make([][]float64, len(series))
	for i := range series {
		g := series[i].CDF(lo, hi, pts)
		grids[i] = make([]float64, len(g))
		for j, p := range g {
			grids[i][j] = p.P
		}
	}
	for j := 0; j < pts; j++ {
		t := lo + (hi-lo)*float64(j)/float64(pts-1)
		fmt.Fprintf(w, "%8.0f", t)
		for i := range series {
			fmt.Fprintf(w, "%12.2f", grids[i][j])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig2cCSV emits raw latency samples for plotting.
func WriteFig2cCSV(w io.Writer, series []Fig2cSeries) {
	fmt.Fprintln(w, "scenario,latency_ms,interrupt_ms")
	for _, s := range series {
		lat := s.Latency.Values()
		intr := s.Interrupt.Values()
		for i := range lat {
			v := 0.0
			if i < len(intr) {
				v = intr[i]
			}
			fmt.Fprintf(w, "%s,%g,%g\n", s.Scenario, lat[i], v)
		}
	}
}

// WriteMobility renders the alignment-held table.
func WriteMobility(w io.Writer, rows []MobilityRow) {
	fmt.Fprintln(w, "Alignment maintained while silently tracking (narrow codebook)")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %8s\n",
		"Scenario", "aligned", "misalign p50", "misalign p90", "HO done", "hard")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.1f%% %10.1f°  %10.1f°  %9.1f%% %7.1f%%\n",
			r.Scenario, r.AlignedFrac.Percent(),
			r.MisalignDeg.Median(), r.MisalignDeg.Quantile(0.9),
			r.HandoverRate.Percent(), r.HardRate.Percent())
	}
}

// WriteThreshold renders the handover-margin ablation.
func WriteThreshold(w io.Writer, rows []ThresholdRow) {
	fmt.Fprintln(w, "Ablation — handover margin T (boundary walk, packet flow attached)")
	fmt.Fprintf(w, "%-8s %10s %10s %12s %10s %10s\n",
		"T (dB)", "handovers", "ping-pongs", "interrupt", "loss", "no-HO")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.0f %10.2f %10.2f %9.0f ms %9.2f%% %9.1f%%\n",
			r.MarginDB, r.Handovers.Mean(), r.PingPongs.Mean(),
			r.InterruptMs.Mean(), 100*r.LossRate.Mean(), r.NoHandover.Percent())
	}
}

// WriteHysteresis renders the adjacent-switch trigger ablation.
func WriteHysteresis(w io.Writer, rows []HysteresisRow) {
	fmt.Fprintln(w, "Ablation — adjacent-switch trigger (device rotation)")
	fmt.Fprintf(w, "%-12s %10s %10s %14s %10s\n",
		"trigger(dB)", "switches", "losses", "misalign(deg)", "HO done")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12.0f %10.1f %10.2f %14.1f %9.1f%%\n",
			r.TriggerDB, r.Switches.Mean(), r.Losses.Mean(),
			r.MisalignDeg.Mean(), r.HandoverOK.Percent())
	}
}

// WriteBaseline renders the strategy comparison.
func WriteBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintln(w, "Baseline comparison — walk out of the serving cell's coverage")
	fmt.Fprintf(w, "%-14s %8s %8s %12s %12s %12s %9s %12s\n",
		"Strategy", "HO done", "hard", "latency p50", "interrupt", "recovery", "loss", "worst outage")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %7.1f%% %7.1f%% %9.0f ms %9.0f ms %9.0f ms %8.2f%% %9.0f ms\n",
			r.Variant, r.HandoverOK.Percent(), r.HardRate.Percent(),
			r.LatencyMs.Median(), r.InterruptMs.Mean(), r.RecoveryMs.Mean(),
			100*r.LossRate.Mean(), r.OutageMs.Quantile(0.9))
	}
}

// Banner writes a section header.
func Banner(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("=", len(title)+4))
	fmt.Fprintf(w, "  %s\n", title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)+4))
	fmt.Fprintln(w)
}

// WritePatterns renders the beam-pattern-model ablation.
func WritePatterns(w io.Writer, rows []PatternRow) {
	fmt.Fprintln(w, "Ablation — beam pattern model (narrow codebook, walk)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %12s\n",
		"Model", "success", "dwells", "HO done", "latency p50")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.1f%% %10.1f %9.1f%% %9.0f ms\n",
			r.Model, r.Success.Percent(), r.Dwells.Mean(),
			r.HandoverOK.Percent(), r.LatencyMs.Median())
	}
}
