package experiments

// This file is the typed result path of every registered campaign:
// each experiment folds its cells into a Table — a column-major,
// renderer-independent summary whose numbers are exactly the ones the
// text tables print. The public st package re-exports Table verbatim,
// so programmatic consumers read typed columns instead of scraping
// stdout.

import "silenttracker/internal/campaign"

// Table is the typed form of one experiment's summary: columns in
// presentation order, each carrying either labels (scenario names,
// strategy names) or values. All columns have one entry per row.
// Tables round-trip through JSON without loss: labels are strings,
// values are float64 (Go marshals shortest-round-trip).
type Table struct {
	Columns []Column `json:"columns"`
}

// Column is one typed column. Exactly one of Labels/Values is
// populated: Labels for symbolic coordinates, Values for measurements.
// Unit names the value's unit ("%", "ms", "dB", ...); it is
// documentation, not a scale factor.
type Column struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit,omitempty"`
	Labels []string  `json:"labels,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// Rows returns the table's row count (all columns are equal length).
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	c := t.Columns[0]
	if c.Labels != nil {
		return len(c.Labels)
	}
	return len(c.Values)
}

func labelCol(name string, vs []string) Column {
	return Column{Name: name, Labels: vs}
}

func valueCol(name, unit string, vs []float64) Column {
	return Column{Name: name, Unit: unit, Values: vs}
}

// Fig2aTable is the typed form of both Fig. 2a panels.
func Fig2aTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := Fig2aRows(cells, p.trials("fig2a", DefaultFig2aOpts().Trials))
	n := len(rows)
	cfg := make([]string, n)
	succ, ciLo, ciHi := make([]float64, n), make([]float64, n), make([]float64, n)
	mean, p50, p90, max := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	trials, ok := make([]float64, n), make([]float64, n)
	for i, r := range rows {
		cfg[i] = r.Config.String()
		succ[i] = r.Success.Percent()
		lo, hi := r.Success.WilsonCI()
		ciLo[i], ciHi[i] = 100*lo, 100*hi
		mean[i], p50[i] = r.Dwells.Mean(), r.Dwells.Median()
		p90[i], max[i] = r.Dwells.Quantile(0.9), r.Dwells.Quantile(1)
		trials[i], ok[i] = float64(r.Trials), float64(r.Dwells.N())
	}
	return Table{Columns: []Column{
		labelCol("config", cfg),
		valueCol("success", "%", succ),
		valueCol("ci_lo", "%", ciLo),
		valueCol("ci_hi", "%", ciHi),
		valueCol("dwells_mean", "dwells", mean),
		valueCol("dwells_p50", "dwells", p50),
		valueCol("dwells_p90", "dwells", p90),
		valueCol("dwells_max", "dwells", max),
		valueCol("trials", "", trials),
		valueCol("trials_ok", "", ok),
	}}
}

// Fig2cTable is the typed form of the Fig. 2c per-scenario summary.
func Fig2cTable(cells []campaign.CellResult, p CampaignParams) Table {
	series := Fig2cSeriesOf(cells, p.trials("fig2c", DefaultFig2cOpts().Trials))
	n := len(series)
	sc := make([]string, n)
	p10, p50, p90, max := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	done, soft, dwells := make([]float64, n), make([]float64, n), make([]float64, n)
	for i, s := range series {
		sc[i] = s.Scenario.String()
		p10[i], p50[i] = s.Latency.Quantile(0.1), s.Latency.Median()
		p90[i], max[i] = s.Latency.Quantile(0.9), s.Latency.Quantile(1)
		done[i], soft[i] = 100*s.CompletionRate(), float64(s.SoftCount)
		dwells[i] = s.Dwells.Mean()
	}
	return Table{Columns: []Column{
		labelCol("scenario", sc),
		valueCol("latency_p10", "ms", p10),
		valueCol("latency_p50", "ms", p50),
		valueCol("latency_p90", "ms", p90),
		valueCol("latency_max", "ms", max),
		valueCol("done", "%", done),
		valueCol("soft", "", soft),
		valueCol("dwells_mean", "dwells", dwells),
	}}
}

// MobilityTable is the typed form of the alignment-held table.
func MobilityTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := MobilityRows(cells, p.trials("mobility", DefaultMobilityOpts().Trials))
	n := len(rows)
	sc := make([]string, n)
	aligned, m50, m90 := make([]float64, n), make([]float64, n), make([]float64, n)
	done, hard := make([]float64, n), make([]float64, n)
	for i, r := range rows {
		sc[i] = r.Scenario.String()
		aligned[i] = r.AlignedFrac.Percent()
		m50[i], m90[i] = r.MisalignDeg.Median(), r.MisalignDeg.Quantile(0.9)
		done[i], hard[i] = r.HandoverRate.Percent(), r.HardRate.Percent()
	}
	return Table{Columns: []Column{
		labelCol("scenario", sc),
		valueCol("aligned", "%", aligned),
		valueCol("misalign_p50", "deg", m50),
		valueCol("misalign_p90", "deg", m90),
		valueCol("ho_done", "%", done),
		valueCol("hard", "%", hard),
	}}
}

// ThresholdTable is the typed form of the handover-margin ablation.
func ThresholdTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := ThresholdRows(cells, p.trials("threshold", DefaultThresholdOpts().Trials))
	n := len(rows)
	margin := make([]float64, n)
	ho, pp, intr, loss, noHO := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i, r := range rows {
		margin[i] = r.MarginDB
		ho[i], pp[i] = r.Handovers.Mean(), r.PingPongs.Mean()
		intr[i], loss[i] = r.InterruptMs.Mean(), 100*r.LossRate.Mean()
		noHO[i] = r.NoHandover.Percent()
	}
	return Table{Columns: []Column{
		valueCol("margin", "dB", margin),
		valueCol("handovers_mean", "", ho),
		valueCol("pingpongs_mean", "", pp),
		valueCol("interrupt_mean", "ms", intr),
		valueCol("loss", "%", loss),
		valueCol("no_handover", "%", noHO),
	}}
}

// HysteresisTable is the typed form of the adjacent-switch ablation.
func HysteresisTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := HysteresisRows(cells, p.trials("hysteresis", DefaultHysteresisOpts().Trials))
	n := len(rows)
	trig := make([]float64, n)
	sw, losses, mis, done := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i, r := range rows {
		trig[i] = r.TriggerDB
		sw[i], losses[i] = r.Switches.Mean(), r.Losses.Mean()
		mis[i], done[i] = r.MisalignDeg.Mean(), r.HandoverOK.Percent()
	}
	return Table{Columns: []Column{
		valueCol("trigger", "dB", trig),
		valueCol("switches_mean", "", sw),
		valueCol("losses_mean", "", losses),
		valueCol("misalign_mean", "deg", mis),
		valueCol("ho_done", "%", done),
	}}
}

// BaselineTable is the typed form of the strategy comparison.
func BaselineTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := BaselineRows(cells, p.trials("baseline", DefaultBaselineOpts().Trials))
	n := len(rows)
	strat := make([]string, n)
	done, hard, lat, intr := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	rec, loss, outage := make([]float64, n), make([]float64, n), make([]float64, n)
	for i, r := range rows {
		strat[i] = r.Variant.String()
		done[i], hard[i] = r.HandoverOK.Percent(), r.HardRate.Percent()
		lat[i], intr[i] = r.LatencyMs.Median(), r.InterruptMs.Mean()
		rec[i], loss[i] = r.RecoveryMs.Mean(), 100*r.LossRate.Mean()
		outage[i] = r.OutageMs.Quantile(0.9)
	}
	return Table{Columns: []Column{
		labelCol("strategy", strat),
		valueCol("ho_done", "%", done),
		valueCol("hard", "%", hard),
		valueCol("latency_p50", "ms", lat),
		valueCol("interrupt_mean", "ms", intr),
		valueCol("recovery_mean", "ms", rec),
		valueCol("loss", "%", loss),
		valueCol("outage_p90", "ms", outage),
	}}
}

// PatternsTable is the typed form of the beam-pattern-model ablation.
func PatternsTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := PatternRows(cells, p.trials("patterns", DefaultPatternOpts().Trials))
	n := len(rows)
	model := make([]string, n)
	succ, dwells, done, lat := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i, r := range rows {
		model[i] = r.Model
		succ[i], dwells[i] = r.Success.Percent(), r.Dwells.Mean()
		done[i], lat[i] = r.HandoverOK.Percent(), r.LatencyMs.Median()
	}
	return Table{Columns: []Column{
		labelCol("model", model),
		valueCol("success", "%", succ),
		valueCol("dwells_mean", "dwells", dwells),
		valueCol("ho_done", "%", done),
		valueCol("latency_p50", "ms", lat),
	}}
}

// CodebookTable is the typed form of the codebook-size sweep.
func CodebookTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := CodebookRows(cells)
	n := len(rows)
	beams, hpbw := make([]float64, n), make([]float64, n)
	succ, d50, msP50, msMax, full := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i, r := range rows {
		beams[i], hpbw[i] = float64(r.Beams), r.HPBWDeg
		succ[i], d50[i] = r.Success.Percent(), r.Dwells.Median()
		msP50[i], msMax[i], full[i] = r.MsP50, r.MsMax, r.FullMs
	}
	return Table{Columns: []Column{
		valueCol("beams", "", beams),
		valueCol("hpbw", "deg", hpbw),
		valueCol("success", "%", succ),
		valueCol("dwells_p50", "dwells", d50),
		valueCol("latency_p50", "ms", msP50),
		valueCol("latency_max", "ms", msMax),
		valueCol("full_scan", "ms", full),
	}}
}

// UrbanTable is the typed form of the handover-storm table.
func UrbanTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := UrbanRows(cells, p.trials("urban", DefaultUrbanOpts().Trials))
	n := len(rows)
	ues := make([]float64, n)
	done, storm, p90, hard, nbr := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range rows {
		r := &rows[i]
		ues[i] = float64(r.UEs)
		done[i], storm[i] = r.HandoverOK.Percent(), r.StormRate()
		p90[i], hard[i] = r.Handovers.Quantile(0.9), 100*r.HardShare()
		nbr[i] = 100 * r.NeighborShare.Mean()
	}
	return Table{Columns: []Column{
		valueCol("ues", "", ues),
		valueCol("ho_done", "%", done),
		valueCol("ho_per_ue_min", "1/min", storm),
		valueCol("ho_p90", "", p90),
		valueCol("hard_share", "%", hard),
		valueCol("nbr_occupancy", "%", nbr),
	}}
}

// HighwayTable is the typed form of the alignment-hold table.
func HighwayTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := HighwayRows(cells, p.trials("highway", DefaultHighwayOpts().Trials))
	n := len(rows)
	speed := make([]float64, n)
	h50, h90, aligned, done, hard := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range rows {
		r := &rows[i]
		speed[i] = r.SpeedMps
		h50[i], h90[i] = r.HoldMs.Median(), r.HoldMs.Quantile(0.9)
		aligned[i], done[i] = r.Aligned.Percent(), r.HandoverOK.Percent()
		hard[i] = 100 * r.HardShare()
	}
	return Table{Columns: []Column{
		valueCol("speed", "m/s", speed),
		valueCol("hold_p50", "ms", h50),
		valueCol("hold_p90", "ms", h90),
		valueCol("aligned", "%", aligned),
		valueCol("ho_done", "%", done),
		valueCol("hard_share", "%", hard),
	}}
}

// HotspotTable is the typed form of the blockage-survival table.
func HotspotTable(cells []campaign.CellResult, p CampaignParams) Table {
	rows := HotspotRows(cells, p.trials("hotspot", DefaultHotspotOpts().Trials))
	n := len(rows)
	density := make([]float64, n)
	track, losses, done, hard := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range rows {
		r := &rows[i]
		density[i] = r.Density
		track[i], losses[i] = r.TrackOK.Percent(), r.LossesPerUE.Mean()
		done[i], hard[i] = r.HandoverOK.Percent(), 100*r.HardShare()
	}
	return Table{Columns: []Column{
		valueCol("density", "", density),
		valueCol("track_ok", "%", track),
		valueCol("losses_per_ue", "", losses),
		valueCol("ho_done", "%", done),
		valueCol("hard_share", "%", hard),
	}}
}
