package experiments

import (
	"silenttracker/internal/core"
	"silenttracker/internal/handover"
	"silenttracker/internal/netem"
	"silenttracker/internal/runner"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
	"silenttracker/internal/world"
)

// ThresholdRow is one row of the handover-margin (T) ablation: the
// trade-off between ping-pong instability (T too small) and late,
// interruption-prone handover (T too large).
type ThresholdRow struct {
	MarginDB    float64
	Trials      int
	Handovers   stats.Sample // completed handovers per trial
	PingPongs   stats.Sample // ping-pongs per trial
	InterruptMs stats.Sample // total interruption per trial, ms
	LossRate    stats.Sample // packet loss fraction per trial
	NoHandover  stats.Rate   // trials that never handed over at all
}

// ThresholdOpts configures the margin sweep.
type ThresholdOpts struct {
	Margins []float64
	Trials  int
	Seed    int64
	Horizon sim.Time
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultThresholdOpts returns the full sweep.
func DefaultThresholdOpts() ThresholdOpts {
	return ThresholdOpts{
		Margins: []float64{0, 3, 6, 9},
		Trials:  40,
		Seed:    4000,
		Horizon: 12 * sim.Second,
	}
}

// RunThreshold regenerates the T ablation. The workload is the
// boundary walk with a packet flow attached, run long enough for the
// mobile to dwell in the crossover region.
func RunThreshold(opts ThresholdOpts) []ThresholdRow {
	type result struct {
		handovers   int
		pingpongs   int
		interruptMs float64
		lossRate    float64
	}
	out := make([]ThresholdRow, 0, len(opts.Margins))
	for _, margin := range opts.Margins {
		row := ThresholdRow{MarginDB: margin, Trials: opts.Trials}
		runner.Fold(opts.Trials, opts.Workers,
			func(i int) result {
				seed := opts.Seed + int64(i)*27644437
				b := EdgeBuilder(seed)
				b.Cfg.HandoverMarginDB = margin
				b.Mob = MobilityFor(Walk, seed)
				w := b.Build()
				aud := handover.NewAuditor(1, 0)
				w.Tracker.SetEventHook(aud.Hook(nil))
				flow := netem.Attach(w, sim.Millisecond)
				w.Run(opts.Horizon)
				flow.Stop()
				return result{
					handovers:   aud.Completed(),
					pingpongs:   aud.PingPongs(),
					interruptMs: aud.TotalInterruption().Millis(),
					lossRate:    flow.LossRate(),
				}
			},
			func(_ int, r result) {
				row.Handovers.Add(float64(r.handovers))
				row.PingPongs.Add(float64(r.pingpongs))
				row.InterruptMs.Add(r.interruptMs)
				row.LossRate.Add(r.lossRate)
				row.NoHandover.Record(r.handovers == 0)
			})
		out = append(out, row)
	}
	return out
}

// HysteresisRow is one row of the adjacent-switch trigger ablation:
// the paper's 3 dB rule swept. Too sensitive → constant probing (lost
// measurement occasions, noise-chasing switches); too numb → the beam
// decays to loss before the tracker reacts.
type HysteresisRow struct {
	TriggerDB   float64
	Trials      int
	Switches    stats.Sample // H switches per trial
	Losses      stats.Sample // D losses per trial
	MisalignDeg stats.Sample // mean misalignment while tracking, degrees
	HandoverOK  stats.Rate   // first handover concluded
}

// HysteresisOpts configures the trigger sweep.
type HysteresisOpts struct {
	Triggers []float64
	Trials   int
	Seed     int64
	Workers  int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultHysteresisOpts returns the full sweep. Rotation is the
// stress workload: 120°/s forces continuous re-alignment.
func DefaultHysteresisOpts() HysteresisOpts {
	return HysteresisOpts{
		Triggers: []float64{1, 3, 6, 10},
		Trials:   40,
		Seed:     5000,
	}
}

// RunHysteresis regenerates the 3 dB rule ablation under rotation.
func RunHysteresis(opts HysteresisOpts) []HysteresisRow {
	out := make([]HysteresisRow, 0, len(opts.Triggers))
	for _, trig := range opts.Triggers {
		row := HysteresisRow{TriggerDB: trig, Trials: opts.Trials}
		runner.Fold(opts.Trials, opts.Workers,
			func(i int) *HysteresisRow {
				seed := opts.Seed + int64(i)*6700417
				b := EdgeBuilder(seed)
				b.Cfg.TrackTriggerDB = trig
				b.Mob = MobilityFor(Rotation, seed)
				w := b.Build()
				var t HysteresisRow
				runHysteresisTrial(w, &t)
				return &t
			},
			func(_ int, t *HysteresisRow) {
				row.Switches.Merge(&t.Switches)
				row.Losses.Merge(&t.Losses)
				row.MisalignDeg.Merge(&t.MisalignDeg)
				row.HandoverOK.Merge(t.HandoverOK)
			})
		out = append(out, row)
	}
	return out
}

func runHysteresisTrial(w *world.World, row *HysteresisRow) {
	tracking := false
	var trackedCell int
	done := false
	var misalign stats.Online
	w.Tracker.SetEventHook(func(e core.Event) {
		switch e.Type {
		case core.EvNeighborFound:
			tracking, trackedCell = true, e.Cell
		case core.EvNeighborLost:
			tracking = false
		case core.EvHandoverComplete:
			done = true
			tracking = false
		}
	})
	w.Engine.Every(10*sim.Millisecond, func() {
		if tracking && !done {
			if errRad := w.AlignmentError(trackedCell); errRad < 6 {
				misalign.Add(errRad * 180 / 3.141592653589793)
			}
		}
	})
	horizon := HorizonFor(Rotation)
	for w.Engine.Now() < horizon && !done {
		w.Run(w.Engine.Now() + 100*sim.Millisecond)
	}
	row.Switches.Add(float64(w.Tracker.NeighborSwitches))
	row.Losses.Add(float64(w.Tracker.NeighborLosses))
	if misalign.N() > 0 {
		row.MisalignDeg.Add(misalign.Mean())
	}
	row.HandoverOK.Record(done)
}
