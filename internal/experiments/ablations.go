package experiments

import (
	"fmt"
	"io"
	"strconv"

	"silenttracker/internal/campaign"
	"silenttracker/internal/core"
	"silenttracker/internal/handover"
	"silenttracker/internal/netem"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
	"silenttracker/internal/world"
)

// floatAxis renders knob settings as exact symbolic axis values
// (shortest round-trip formatting, parsed back by Cell.Float).
func floatAxis(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

// ThresholdRow is one row of the handover-margin (T) ablation: the
// trade-off between ping-pong instability (T too small) and late,
// interruption-prone handover (T too large).
type ThresholdRow struct {
	MarginDB    float64
	Trials      int
	Handovers   stats.Sample // completed handovers per trial
	PingPongs   stats.Sample // ping-pongs per trial
	InterruptMs stats.Sample // total interruption per trial, ms
	LossRate    stats.Sample // packet loss fraction per trial
	NoHandover  stats.Rate   // trials that never handed over at all
}

// ThresholdOpts configures the margin sweep.
type ThresholdOpts struct {
	Margins []float64
	Trials  int
	Seed    int64
	Horizon sim.Time
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultThresholdOpts returns the full sweep.
func DefaultThresholdOpts() ThresholdOpts {
	return ThresholdOpts{
		Margins: []float64{0, 3, 6, 9},
		Trials:  40,
		Seed:    4000,
		Horizon: 12 * sim.Second,
	}
}

// ThresholdCampaign declares the handover-margin ablation as a
// campaign spec: one axis (the margin T in dB), a boundary walk with
// a packet flow attached as the unit body.
func ThresholdCampaign(opts ThresholdOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "threshold",
		Description: "handover margin T ablation: ping-pong instability vs late, lossy handover",
		Axes: []campaign.Axis{
			{Name: "margin_db", Values: floatAxis(opts.Margins)},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 27644437,
		Epoch:      "threshold/v1",
		Config:     fmt.Sprintf("horizon=%d", opts.Horizon),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			b := EdgeBuilder(seed)
			b.Cfg.HandoverMarginDB = cell.Float("margin_db")
			b.Mob = MobilityFor(Walk, seed)
			w := b.Build()
			aud := handover.NewAuditor(1, 0)
			w.Tracker.SetEventHook(aud.Hook(nil))
			flow := netem.Attach(w, sim.Millisecond)
			w.Run(opts.Horizon)
			flow.Stop()
			m := campaign.NewMetrics()
			m.Count("handovers", aud.Completed())
			m.Count("pingpongs", aud.PingPongs())
			m.Add("interrupt_ms", aud.TotalInterruption().Millis())
			m.Add("loss_rate", flow.LossRate())
			m.Record("no_ho", aud.Completed() == 0)
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteThreshold(w, ThresholdRows(cells, opts.Trials))
		},
	}
}

// ThresholdRows folds campaign cells back into the table's row structs.
func ThresholdRows(cells []campaign.CellResult, trials int) []ThresholdRow {
	out := make([]ThresholdRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, ThresholdRow{
			MarginDB:    c.Cell.Float("margin_db"),
			Trials:      trials,
			Handovers:   c.Sample("handovers"),
			PingPongs:   c.Sample("pingpongs"),
			InterruptMs: c.Sample("interrupt_ms"),
			LossRate:    c.Sample("loss_rate"),
			NoHandover:  c.Rate("no_ho"),
		})
	}
	return out
}

// RunThreshold regenerates the T ablation. The workload is the
// boundary walk with a packet flow attached, run long enough for the
// mobile to dwell in the crossover region.
func RunThreshold(opts ThresholdOpts) []ThresholdRow {
	return ThresholdRows(campaign.Collect(ThresholdCampaign(opts), opts.Workers), opts.Trials)
}

// HysteresisRow is one row of the adjacent-switch trigger ablation:
// the paper's 3 dB rule swept. Too sensitive → constant probing (lost
// measurement occasions, noise-chasing switches); too numb → the beam
// decays to loss before the tracker reacts.
type HysteresisRow struct {
	TriggerDB   float64
	Trials      int
	Switches    stats.Sample // H switches per trial
	Losses      stats.Sample // D losses per trial
	MisalignDeg stats.Sample // mean misalignment while tracking, degrees
	HandoverOK  stats.Rate   // first handover concluded
}

// HysteresisOpts configures the trigger sweep.
type HysteresisOpts struct {
	Triggers []float64
	Trials   int
	Seed     int64
	Workers  int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultHysteresisOpts returns the full sweep. Rotation is the
// stress workload: 120°/s forces continuous re-alignment.
func DefaultHysteresisOpts() HysteresisOpts {
	return HysteresisOpts{
		Triggers: []float64{1, 3, 6, 10},
		Trials:   40,
		Seed:     5000,
	}
}

// HysteresisCampaign declares the adjacent-switch trigger ablation as
// a campaign spec: one axis (the trigger in dB), the rotation stress
// workload as the unit body.
func HysteresisCampaign(opts HysteresisOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "hysteresis",
		Description: "adjacent-switch trigger (3 dB rule) ablation under device rotation",
		Axes: []campaign.Axis{
			{Name: "trigger_db", Values: floatAxis(opts.Triggers)},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 6700417,
		Epoch:      "hysteresis/v1",
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			b := EdgeBuilder(seed)
			b.Cfg.TrackTriggerDB = cell.Float("trigger_db")
			b.Mob = MobilityFor(Rotation, seed)
			w := b.Build()
			var t HysteresisRow
			runHysteresisTrial(w, &t)
			m := campaign.NewMetrics()
			m.Add("switches", t.Switches.Raw()...)
			m.Add("losses", t.Losses.Raw()...)
			m.Add("misalign_deg", t.MisalignDeg.Raw()...)
			m.Record("ho_ok", t.HandoverOK.Successes > 0)
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteHysteresis(w, HysteresisRows(cells, opts.Trials))
		},
	}
}

// HysteresisRows folds campaign cells back into the table's row structs.
func HysteresisRows(cells []campaign.CellResult, trials int) []HysteresisRow {
	out := make([]HysteresisRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, HysteresisRow{
			TriggerDB:   c.Cell.Float("trigger_db"),
			Trials:      trials,
			Switches:    c.Sample("switches"),
			Losses:      c.Sample("losses"),
			MisalignDeg: c.Sample("misalign_deg"),
			HandoverOK:  c.Rate("ho_ok"),
		})
	}
	return out
}

// RunHysteresis regenerates the 3 dB rule ablation under rotation.
func RunHysteresis(opts HysteresisOpts) []HysteresisRow {
	return HysteresisRows(campaign.Collect(HysteresisCampaign(opts), opts.Workers), opts.Trials)
}

func runHysteresisTrial(w *world.World, row *HysteresisRow) {
	tracking := false
	var trackedCell int
	done := false
	var misalign stats.Online
	w.Tracker.SetEventHook(func(e core.Event) {
		switch e.Type {
		case core.EvNeighborFound:
			tracking, trackedCell = true, e.Cell
		case core.EvNeighborLost:
			tracking = false
		case core.EvHandoverComplete:
			done = true
			tracking = false
		}
	})
	w.Engine.Every(10*sim.Millisecond, func() {
		if tracking && !done {
			if errRad := w.AlignmentError(trackedCell); errRad < 6 {
				misalign.Add(errRad * 180 / 3.141592653589793)
			}
		}
	})
	horizon := HorizonFor(Rotation)
	for w.Engine.Now() < horizon && !done {
		w.Run(w.Engine.Now() + 100*sim.Millisecond)
	}
	row.Switches.Add(float64(w.Tracker.NeighborSwitches))
	row.Losses.Add(float64(w.Tracker.NeighborLosses))
	if misalign.N() > 0 {
		row.MisalignDeg.Add(misalign.Mean())
	}
	row.HandoverOK.Record(done)
}
