package experiments

import (
	"silenttracker/internal/antenna"
	"silenttracker/internal/geom"
	"silenttracker/internal/handover"
	"silenttracker/internal/runner"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// PatternRow compares beam-pattern models: the smooth 3GPP-style
// Gaussian main lobe the experiments default to, versus a true
// uniform-linear-array factor with real side lobes and nulls. The
// protocol only ever sees RSS, so if its behaviour depended on the
// pattern's analytic form that would be a red flag for the
// reproduction; this ablation checks it does not.
type PatternRow struct {
	Model      string
	Trials     int
	Success    stats.Rate   // Fig. 2a-style search success (narrow, walk)
	Dwells     stats.Sample // search latency over successes
	HandoverOK stats.Rate   // Fig. 2c-style walk handover completion
	LatencyMs  stats.Sample
}

// PatternOpts configures the pattern-model ablation.
type PatternOpts struct {
	Trials  int
	Seed    int64
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultPatternOpts returns the full comparison.
func DefaultPatternOpts() PatternOpts { return PatternOpts{Trials: 60, Seed: 7000} }

// RunPatterns regenerates the pattern-model ablation.
func RunPatterns(opts PatternOpts) []PatternRow {
	models := []struct {
		name string
		mk   func() *antenna.Codebook
	}{
		{"Gaussian", func() *antenna.Codebook {
			return antenna.NewRingCodebook("mobile-narrow-20", 18, geom.Deg(20), antenna.ModelGaussian)
		}},
		{"ULA", func() *antenna.Codebook {
			return antenna.NewRingCodebook("mobile-ula-20", 18, geom.Deg(20), antenna.ModelULA)
		}},
	}
	type result struct {
		searchOK  bool
		dwells    int
		hoOK      bool
		latencyMs float64
	}
	out := make([]PatternRow, 0, len(models))
	for _, m := range models {
		row := PatternRow{Model: m.name, Trials: opts.Trials}
		sOpts := DefaultFig2aOpts()
		runner.Fold(opts.Trials, opts.Workers,
			func(i int) result {
				seed := opts.Seed + int64(i)*15485863
				var r result
				// Search trial with the model's codebook.
				b := EdgeBuilder(seed)
				b.UEBook = m.mk()
				b.Mob = MobilityFor(Walk, seed)
				r.searchOK, r.dwells = searchTrialWith(b, sOpts)
				// Handover trial with the model's codebook.
				b2 := EdgeBuilder(seed + 1)
				b2.UEBook = m.mk()
				b2.Mob = MobilityFor(Walk, seed+1)
				w := b2.Build()
				aud := handover.NewAuditor(1, 0)
				w.Tracker.SetEventHook(aud.Hook(nil))
				horizon := HorizonFor(Walk)
				for w.Engine.Now() < horizon && aud.Completed() == 0 {
					w.Run(w.Engine.Now() + 100*sim.Millisecond)
				}
				if rec, got := aud.First(); got {
					r.hoOK = true
					r.latencyMs = rec.Latency().Millis()
				}
				return r
			},
			func(_ int, r result) {
				row.Success.Record(r.searchOK)
				if r.searchOK {
					row.Dwells.Add(float64(r.dwells))
				}
				row.HandoverOK.Record(r.hoOK)
				if r.hoOK {
					row.LatencyMs.Add(r.latencyMs)
				}
			})
		out = append(out, row)
	}
	return out
}
