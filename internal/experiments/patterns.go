package experiments

import (
	"io"

	"silenttracker/internal/antenna"
	"silenttracker/internal/campaign"
	"silenttracker/internal/geom"
	"silenttracker/internal/handover"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// PatternRow compares beam-pattern models: the smooth 3GPP-style
// Gaussian main lobe the experiments default to, versus a true
// uniform-linear-array factor with real side lobes and nulls. The
// protocol only ever sees RSS, so if its behaviour depended on the
// pattern's analytic form that would be a red flag for the
// reproduction; this ablation checks it does not.
type PatternRow struct {
	Model      string
	Trials     int
	Success    stats.Rate   // Fig. 2a-style search success (narrow, walk)
	Dwells     stats.Sample // search latency over successes
	HandoverOK stats.Rate   // Fig. 2c-style walk handover completion
	LatencyMs  stats.Sample
}

// PatternOpts configures the pattern-model ablation.
type PatternOpts struct {
	Trials  int
	Seed    int64
	Workers int // trial parallelism (0 = GOMAXPROCS); never changes results
}

// DefaultPatternOpts returns the full comparison.
func DefaultPatternOpts() PatternOpts { return PatternOpts{Trials: 60, Seed: 7000} }

// patternBook builds the 18-beam, 20° mobile codebook for the named
// pattern model.
func patternBook(model string) *antenna.Codebook {
	switch model {
	case "Gaussian":
		return antenna.NewRingCodebook("mobile-narrow-20", 18, geom.Deg(20), antenna.ModelGaussian)
	case "ULA":
		return antenna.NewRingCodebook("mobile-ula-20", 18, geom.Deg(20), antenna.ModelULA)
	}
	panic("experiments: unknown pattern model " + model)
}

// PatternsCampaign declares the beam-pattern-model ablation as a
// campaign spec: one axis (the pattern model), a paired search +
// handover trial as the unit body.
func PatternsCampaign(opts PatternOpts) *campaign.Spec {
	return &campaign.Spec{
		Name:        "patterns",
		Description: "beam pattern model ablation (Gaussian vs ULA): the protocol only sees RSS",
		Axes: []campaign.Axis{
			{Name: "model", Values: []string{"Gaussian", "ULA"}},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 15485863,
		Epoch:      "patterns/v1",
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			model := cell.Get("model")
			sOpts := DefaultFig2aOpts()
			m := campaign.NewMetrics()
			// Search trial with the model's codebook.
			b := EdgeBuilder(seed)
			b.UEBook = patternBook(model)
			b.Mob = MobilityFor(Walk, seed)
			searchOK, dwells := searchTrialWith(b, sOpts)
			m.Record("search_ok", searchOK)
			if searchOK {
				m.Add("dwells", float64(dwells))
			}
			// Handover trial with the model's codebook.
			b2 := EdgeBuilder(seed + 1)
			b2.UEBook = patternBook(model)
			b2.Mob = MobilityFor(Walk, seed+1)
			w := b2.Build()
			aud := handover.NewAuditor(1, 0)
			w.Tracker.SetEventHook(aud.Hook(nil))
			horizon := HorizonFor(Walk)
			for w.Engine.Now() < horizon && aud.Completed() == 0 {
				w.Run(w.Engine.Now() + 100*sim.Millisecond)
			}
			rec, hoOK := aud.First()
			m.Record("ho_ok", hoOK)
			if hoOK {
				m.Add("latency_ms", rec.Latency().Millis())
			}
			return m
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WritePatterns(w, PatternRows(cells, opts.Trials))
		},
	}
}

// PatternRows folds campaign cells back into the table's row structs.
func PatternRows(cells []campaign.CellResult, trials int) []PatternRow {
	out := make([]PatternRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, PatternRow{
			Model:      c.Cell.Get("model"),
			Trials:     trials,
			Success:    c.Rate("search_ok"),
			Dwells:     c.Sample("dwells"),
			HandoverOK: c.Rate("ho_ok"),
			LatencyMs:  c.Sample("latency_ms"),
		})
	}
	return out
}

// RunPatterns regenerates the pattern-model ablation.
func RunPatterns(opts PatternOpts) []PatternRow {
	return PatternRows(campaign.Collect(PatternsCampaign(opts), opts.Workers), opts.Trials)
}
