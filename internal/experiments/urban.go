package experiments

import (
	"fmt"
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/geom"
	"silenttracker/internal/scenario"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// UrbanRow summarises one fleet size of the urban family: a hex-grid
// deployment with a mixed pedestrian/rotation/vehicular fleet, the
// dense-deployment regime where handover storms happen and silent
// neighbor alignment matters most.
type UrbanRow struct {
	UEs    int
	Trials int

	// Handovers is the per-UE completed-handover count distribution.
	Handovers stats.Sample
	// HandoverOK: UEs that completed at least one handover.
	HandoverOK stats.Rate
	// HardHandovers is the per-UE hard-handover count distribution;
	// hard events are a subset of completed handovers (the serving
	// link died before the soft path finished).
	HardHandovers stats.Sample
	// NeighborShare: per-UE fraction of measurement occasions spent on
	// neighbor cells (the "minimal resource usage" claim at scale).
	NeighborShare stats.Sample
	// HorizonS is the trial horizon, for the storm-rate column.
	HorizonS float64
}

// StormRate returns completed handovers per UE per minute.
func (r *UrbanRow) StormRate() float64 {
	if r.HorizonS == 0 {
		return 0
	}
	return r.Handovers.Mean() * 60 / r.HorizonS
}

// HardShare returns the fraction of completed handovers that
// degenerated into hard ones (0 with no handovers).
func (r *UrbanRow) HardShare() float64 {
	return hardShare(&r.HardHandovers, &r.Handovers)
}

// hardShare divides total hard events by total completed handovers.
func hardShare(hard, done *stats.Sample) float64 {
	var h, d float64
	for _, v := range hard.Raw() {
		h += v
	}
	for _, v := range done.Raw() {
		d += v
	}
	if d == 0 {
		return 0
	}
	return h / d
}

// UrbanOpts configures the urban family.
type UrbanOpts struct {
	Trials  int
	Seed    int64
	Workers int
	// UEs are the fleet sizes swept.
	UEs []int
}

// DefaultUrbanOpts returns the full-fidelity settings.
func DefaultUrbanOpts() UrbanOpts {
	return UrbanOpts{Trials: 12, Seed: 9000, UEs: []int{20, 60, 100}}
}

// urbanHorizon is the trial window; long enough for walkers crossing
// a sector boundary of the 20 m grid to complete a handover.
const urbanHorizon = 8 * sim.Second

// urbanSpec is the declarative world family: a radius-1 hex grid
// (7 cells) with a mixed fleet spawned across the central two rings.
func urbanSpec(ues int) scenario.Spec {
	const spacing = 20.0
	return scenario.Spec{
		Name:     "urban",
		Topology: scenario.HexGrid(1, spacing),
		Fleet: scenario.Fleet{
			Count: ues,
			Spawn: scenario.AnnulusRegion(geom.V(0, 0), 4, 0.8*spacing),
			Mix:   scenario.Mix{Walk: 0.6, Rotation: 0.2, Vehicular: 0.2},
			// Uniform headings: an urban crowd goes everywhere.
			HeadingJitter: geom.TwoPi,
		},
		Blockers:  scenario.Blockers{Density: 1},
		CellRange: 0.9 * spacing,
		Horizon:   urbanHorizon,
	}
}

// UrbanCampaign declares the urban family as a campaign spec with the
// fleet size as the sweep axis.
func UrbanCampaign(opts UrbanOpts) *campaign.Spec {
	values := make([]string, len(opts.UEs))
	for i, n := range opts.UEs {
		values[i] = fmt.Sprintf("%d", n)
	}
	return &campaign.Spec{
		Name:        "urban",
		Description: "hex-grid fleet sweep: handover storms under mixed urban mobility",
		Axes: []campaign.Axis{
			{Name: "ues", Values: values},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 31337,
		Epoch:      "urban/v1",
		Config:     urbanSpec(1).Fingerprint(),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			return urbanTrial(cell.Int("ues"), seed)
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteUrban(w, UrbanRows(cells, opts.Trials))
		},
	}
}

// urbanTrial compiles and runs one fleet; each UE contributes one
// observation per metric, appended in UE index order so folds are
// deterministic.
func urbanTrial(ues int, seed int64) campaign.Metrics {
	dep := scenario.Compile(urbanSpec(ues), seed)
	m := campaign.NewMetrics()
	for i := 0; i < dep.NumUEs(); i++ {
		w := dep.BuildUE(i)
		w.Run(urbanHorizon)
		m.Add("handovers", float64(w.Tracker.HandoversDone))
		m.Record("ho_ok", w.Tracker.HandoversDone > 0)
		m.Add("hard_handovers", float64(w.Tracker.HardHandovers))
		if total := w.ServingListens + w.NeighborListens; total > 0 {
			m.Add("neighbor_share", float64(w.NeighborListens)/float64(total))
		}
	}
	return m
}

// UrbanRows folds campaign cells back into rows.
func UrbanRows(cells []campaign.CellResult, trials int) []UrbanRow {
	out := make([]UrbanRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, UrbanRow{
			UEs:           c.Cell.Int("ues"),
			Trials:        trials,
			Handovers:     c.Sample("handovers"),
			HandoverOK:    c.Rate("ho_ok"),
			HardHandovers: c.Sample("hard_handovers"),
			NeighborShare: c.Sample("neighbor_share"),
			HorizonS:      urbanHorizon.Seconds(),
		})
	}
	return out
}

// WriteUrban renders the handover-storm table.
func WriteUrban(w io.Writer, rows []UrbanRow) {
	fmt.Fprintln(w, "Urban hex grid (7 cells) — handover storms under a mixed fleet")
	fmt.Fprintf(w, "%-6s %10s %12s %10s %10s %14s\n",
		"UEs", "HO done", "HO/UE/min", "HO p90", "hard/HO", "nbr occupancy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %9.1f%% %12.2f %10.1f %9.1f%% %13.1f%%\n",
			r.UEs, r.HandoverOK.Percent(), r.StormRate(),
			r.Handovers.Quantile(0.9), 100*r.HardShare(),
			100*r.NeighborShare.Mean())
	}
}

// RunUrban regenerates the urban table.
func RunUrban(opts UrbanOpts) []UrbanRow {
	return UrbanRows(campaign.Collect(UrbanCampaign(opts), opts.Workers), opts.Trials)
}
