package experiments

import (
	"fmt"
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/core"
	"silenttracker/internal/geom"
	"silenttracker/internal/scenario"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// HotspotRow summarises one blocker density of the hotspot family: a
// ring of cells around a crowded area, measuring whether silent
// tracking survives as the blockage rate grows.
type HotspotRow struct {
	Density float64
	Trials  int

	// TrackOK: tracking episodes that ended in a completed handover or
	// were still holding alignment at the horizon — i.e. the silent
	// track was never lost.
	TrackOK stats.Rate
	// LossesPerUE is the per-UE neighbor-lost count distribution.
	LossesPerUE stats.Sample
	// HandoverOK: UEs that completed at least one handover.
	HandoverOK stats.Rate
	// Handovers / HardHandovers are per-UE event-count distributions;
	// their ratio is the hard share of all completed handovers.
	Handovers     stats.Sample
	HardHandovers stats.Sample
}

// HardShare returns the fraction of completed handovers that
// degenerated into hard ones.
func (r *HotspotRow) HardShare() float64 {
	return hardShare(&r.HardHandovers, &r.Handovers)
}

// HotspotOpts configures the hotspot family.
type HotspotOpts struct {
	Trials  int
	Seed    int64
	Workers int
	// Densities are the blocker-field densities swept (1 = the
	// calibrated default blockage rate, 0 = none).
	Densities []float64
}

// DefaultHotspotOpts returns the full-fidelity settings.
func DefaultHotspotOpts() HotspotOpts {
	return HotspotOpts{Trials: 12, Seed: 9200, Densities: []float64{0, 0.5, 1, 2, 4}}
}

// hotspotHorizon is the trial window.
const hotspotHorizon = 8 * sim.Second

// hotspotSpec is the declarative world family: six cells ringed
// around a hotspot, a pedestrian-heavy fleet spawned between the
// centre and the ring, and a blocker field of the given density.
func hotspotSpec(density float64) scenario.Spec {
	const ringRadius = 14.0
	return scenario.Spec{
		Name:     "hotspot",
		Topology: scenario.Ring(6, ringRadius),
		Fleet: scenario.Fleet{
			Count:         8,
			Spawn:         scenario.AnnulusRegion(geom.V(0, 0), 5, ringRadius-2),
			Mix:           scenario.Mix{Walk: 0.75, Rotation: 0.25},
			HeadingJitter: geom.TwoPi,
		},
		Blockers:  scenario.Blockers{Density: density},
		CellRange: 1.3 * ringRadius,
		Horizon:   hotspotHorizon,
	}
}

// HotspotCampaign declares the hotspot family as a campaign spec with
// blocker density as the sweep axis.
func HotspotCampaign(opts HotspotOpts) *campaign.Spec {
	values := make([]string, len(opts.Densities))
	for i, v := range opts.Densities {
		values[i] = fmt.Sprintf("%g", v)
	}
	return &campaign.Spec{
		Name:        "hotspot",
		Description: "ring of cells + dense blockers: silent-tracking success under blockage",
		Axes: []campaign.Axis{
			{Name: "density", Values: values},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 31337,
		Epoch:      "hotspot/v1",
		Config:     hotspotSpec(1).Fingerprint(),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			return hotspotTrial(cell.Float("density"), seed)
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteHotspot(w, HotspotRows(cells, opts.Trials))
		},
	}
}

// hotspotTrial compiles and runs one fleet at one blocker density.
func hotspotTrial(density float64, seed int64) campaign.Metrics {
	dep := scenario.Compile(hotspotSpec(density), seed)
	m := campaign.NewMetrics()
	for i := 0; i < dep.NumUEs(); i++ {
		w := dep.BuildUE(i)
		tracking, done := false, false
		losses := 0
		w.Tracker.SetEventHook(func(e core.Event) {
			switch e.Type {
			case core.EvNeighborFound:
				tracking = true
			case core.EvNeighborLost:
				losses++
				if tracking {
					m.Record("track_ok", false)
					tracking = false
				}
			case core.EvHandoverComplete:
				done = true
				if tracking {
					m.Record("track_ok", true)
					tracking = false
				}
			}
		})
		w.Run(hotspotHorizon)
		if tracking {
			// Still silently aligned when the window closed: a held
			// track, not a lost one.
			m.Record("track_ok", true)
		}
		m.Count("losses", losses)
		m.Record("ho_ok", done)
		m.Add("handovers", float64(w.Tracker.HandoversDone))
		m.Add("hard_handovers", float64(w.Tracker.HardHandovers))
	}
	return m
}

// HotspotRows folds campaign cells back into rows.
func HotspotRows(cells []campaign.CellResult, trials int) []HotspotRow {
	out := make([]HotspotRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, HotspotRow{
			Density:       c.Cell.Float("density"),
			Trials:        trials,
			TrackOK:       c.Rate("track_ok"),
			LossesPerUE:   c.Sample("losses"),
			HandoverOK:    c.Rate("ho_ok"),
			Handovers:     c.Sample("handovers"),
			HardHandovers: c.Sample("hard_handovers"),
		})
	}
	return out
}

// WriteHotspot renders the blockage-survival table.
func WriteHotspot(w io.Writer, rows []HotspotRow) {
	fmt.Fprintln(w, "Hotspot ring (6 cells) — silent tracking under a blocker field")
	fmt.Fprintf(w, "%-9s %10s %12s %10s %10s\n",
		"density", "track OK", "losses/UE", "HO done", "hard/HO")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9.1f %9.1f%% %12.2f %9.1f%% %9.1f%%\n",
			r.Density, r.TrackOK.Percent(), r.LossesPerUE.Mean(),
			r.HandoverOK.Percent(), 100*r.HardShare())
	}
}

// RunHotspot regenerates the hotspot table.
func RunHotspot(opts HotspotOpts) []HotspotRow {
	return HotspotRows(campaign.Collect(HotspotCampaign(opts), opts.Workers), opts.Trials)
}
