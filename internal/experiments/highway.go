package experiments

import (
	"fmt"
	"io"

	"silenttracker/internal/campaign"
	"silenttracker/internal/core"
	"silenttracker/internal/geom"
	"silenttracker/internal/scenario"
	"silenttracker/internal/sim"
	"silenttracker/internal/stats"
)

// HighwayRow summarises one speed of the highway family: a vehicular
// fleet driving a linear corridor of cells, measuring how long the
// silently tracked neighbor beam is held as speed grows.
type HighwayRow struct {
	SpeedMps float64
	Trials   int

	// HoldMs is the distribution of tracking-episode durations
	// (neighbor found → handover complete, neighbor lost, or horizon).
	HoldMs stats.Sample
	// Aligned: fraction of 10 ms samples within one beamwidth while
	// tracking.
	Aligned stats.Rate
	// HandoverOK: UEs that completed at least one handover.
	HandoverOK stats.Rate
	// Handovers / HardHandovers are per-UE event-count distributions;
	// their ratio is the hard share of all completed handovers.
	Handovers     stats.Sample
	HardHandovers stats.Sample
}

// HardShare returns the fraction of completed handovers that
// degenerated into hard ones.
func (r *HighwayRow) HardShare() float64 {
	return hardShare(&r.HardHandovers, &r.Handovers)
}

// HighwayOpts configures the highway family.
type HighwayOpts struct {
	Trials  int
	Seed    int64
	Workers int
	// Speeds are the vehicular speeds swept, m/s.
	Speeds []float64
}

// DefaultHighwayOpts returns the full-fidelity settings. 25 m/s is
// ~56 mph — nearly three times the paper's vehicular case.
func DefaultHighwayOpts() HighwayOpts {
	return HighwayOpts{Trials: 12, Seed: 9100, Speeds: []float64{5, 10, 15, 20, 25}}
}

// highwaySpacing is the corridor inter-site distance, meters.
const highwaySpacing = 25.0

// highwaySpec is the declarative world family: a five-cell corridor
// with a vehicular fleet spawned before the first boundary, driving
// east with small heading jitter.
func highwaySpec(speed float64) scenario.Spec {
	return scenario.Spec{
		Name:     "highway",
		Topology: scenario.LinearCorridor(5, highwaySpacing),
		Fleet: scenario.Fleet{
			Count:         10,
			Spawn:         scenario.RectRegion(geom.V(2, -2), geom.V(14, 2)),
			Mix:           scenario.Mix{Vehicular: 1},
			Heading:       0,
			HeadingJitter: 0.04,
			Speed:         speed,
		},
		Blockers:  scenario.Blockers{Density: 1},
		CellRange: 0.8 * highwaySpacing,
		Horizon:   highwayHorizon(speed),
	}
}

// highwayHorizon scales the trial window to the speed: time to cover
// two inter-site distances (two boundary crossings), bounded to keep
// slow sweeps affordable and fast ones meaningful.
func highwayHorizon(speed float64) sim.Time {
	t := 2 * highwaySpacing / speed
	if t > 12 {
		t = 12
	}
	if t < 3 {
		t = 3
	}
	return sim.Time(t * float64(sim.Second))
}

// HighwayCampaign declares the highway family as a campaign spec with
// speed as the sweep axis.
func HighwayCampaign(opts HighwayOpts) *campaign.Spec {
	values := make([]string, len(opts.Speeds))
	// The horizon depends on the swept speed, so the placeholder
	// fingerprint alone would not see highwayHorizon changes; fold the
	// realized horizon of every axis value into the config identity.
	horizons := make([]string, len(opts.Speeds))
	for i, v := range opts.Speeds {
		values[i] = fmt.Sprintf("%g", v)
		horizons[i] = fmt.Sprintf("%d", int64(highwayHorizon(v)))
	}
	return &campaign.Spec{
		Name:        "highway",
		Description: "corridor vehicular fleet: alignment hold duration vs speed",
		Axes: []campaign.Axis{
			{Name: "speed_mps", Values: values},
		},
		Trials:     opts.Trials,
		Seed:       opts.Seed,
		SeedStride: 31337,
		Epoch:      "highway/v1",
		Config:     fmt.Sprintf("%s horizons=%v", highwaySpec(1).Fingerprint(), horizons),
		Trial: func(cell campaign.Cell, seed int64) campaign.Metrics {
			return highwayTrial(cell.Float("speed_mps"), seed)
		},
		Render: func(w io.Writer, cells []campaign.CellResult) {
			WriteHighway(w, HighwayRows(cells, opts.Trials))
		},
	}
}

// highwayTrial compiles and runs one fleet at one speed. The aligned
// counters accumulate across the whole fleet and are recorded once
// per trial: RateCounts folds them via Scalar, which reads a single
// observation per trial.
func highwayTrial(speed float64, seed int64) campaign.Metrics {
	dep := scenario.Compile(highwaySpec(speed), seed)
	horizon := highwayHorizon(speed)
	m := campaign.NewMetrics()
	var alignedOK, alignedN int
	for i := 0; i < dep.NumUEs(); i++ {
		w := dep.BuildUE(i)
		alignedTol := w.Device.Book.Beamwidth()

		tracking, done := false, false
		var trackedCell int
		var trackStart sim.Time
		endEpisode := func(at sim.Time) {
			if tracking {
				m.Add("hold_ms", (at - trackStart).Millis())
				tracking = false
			}
		}
		w.Tracker.SetEventHook(func(e core.Event) {
			switch e.Type {
			case core.EvNeighborFound:
				tracking, trackedCell, trackStart = true, e.Cell, e.At
			case core.EvNeighborLost:
				endEpisode(e.At)
			case core.EvHandoverComplete:
				done = true
				endEpisode(e.At)
			}
		})
		w.Engine.Every(10*sim.Millisecond, func() {
			if !tracking {
				return
			}
			errRad := w.AlignmentError(trackedCell)
			if errRad >= geom.TwoPi {
				return // no beam right now (mid-probe bookkeeping)
			}
			alignedN++
			if errRad <= alignedTol {
				alignedOK++
			}
		})
		w.Run(horizon)
		endEpisode(horizon)
		m.Record("ho_ok", done)
		m.Add("handovers", float64(w.Tracker.HandoversDone))
		m.Add("hard_handovers", float64(w.Tracker.HardHandovers))
	}
	m.Count("aligned_ok", alignedOK)
	m.Count("aligned_n", alignedN)
	return m
}

// HighwayRows folds campaign cells back into rows.
func HighwayRows(cells []campaign.CellResult, trials int) []HighwayRow {
	out := make([]HighwayRow, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		out = append(out, HighwayRow{
			SpeedMps:      c.Cell.Float("speed_mps"),
			Trials:        trials,
			HoldMs:        c.Sample("hold_ms"),
			Aligned:       c.RateCounts("aligned"),
			HandoverOK:    c.Rate("ho_ok"),
			Handovers:     c.Sample("handovers"),
			HardHandovers: c.Sample("hard_handovers"),
		})
	}
	return out
}

// WriteHighway renders the alignment-hold table.
func WriteHighway(w io.Writer, rows []HighwayRow) {
	fmt.Fprintln(w, "Highway corridor (5 cells) — silent alignment hold vs vehicular speed")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10s\n",
		"speed", "hold p50", "hold p90", "aligned", "HO done", "hard/HO")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7.0f m/s %7.0f ms %7.0f ms %9.1f%% %9.1f%% %9.1f%%\n",
			r.SpeedMps, r.HoldMs.Median(), r.HoldMs.Quantile(0.9),
			r.Aligned.Percent(), r.HandoverOK.Percent(), 100*r.HardShare())
	}
}

// RunHighway regenerates the highway table.
func RunHighway(opts HighwayOpts) []HighwayRow {
	return HighwayRows(campaign.Collect(HighwayCampaign(opts), opts.Workers), opts.Trials)
}
