package experiments

import (
	"bytes"
	"strings"
	"testing"

	"silenttracker/internal/sim"
)

func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	rows := RunFig2a(Fig2aQuick(30))
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var narrow, wide, omni Fig2aRow
	for _, r := range rows {
		switch r.Config {
		case Narrow:
			narrow = r
		case Wide:
			wide = r
		case Omni:
			omni = r
		}
	}
	// The paper's headline: narrow beams succeed far more often than
	// omni, despite searching longer.
	if narrow.Success.Value() <= omni.Success.Value() {
		t.Errorf("narrow success %.2f should exceed omni %.2f",
			narrow.Success.Value(), omni.Success.Value())
	}
	if narrow.Success.Value() < 0.8 {
		t.Errorf("narrow success %.2f suspiciously low", narrow.Success.Value())
	}
	if omni.Success.Value() > 0.8 {
		t.Errorf("omni success %.2f suspiciously high", omni.Success.Value())
	}
	// Narrow searches take more dwells than wide (more beams to scan).
	if narrow.Dwells.Mean() <= wide.Dwells.Mean() {
		t.Errorf("narrow dwells %.1f should exceed wide %.1f",
			narrow.Dwells.Mean(), wide.Dwells.Mean())
	}
}

func TestFig2cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	series := RunFig2c(Fig2cQuick(15))
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.CompletionRate() < 0.6 {
			t.Errorf("%v completion rate %.2f too low", s.Scenario, s.CompletionRate())
		}
		if s.Completed > 0 && (s.Latency.Median() < 50 || s.Latency.Median() > 5000) {
			t.Errorf("%v median latency %.0f ms implausible", s.Scenario, s.Latency.Median())
		}
		// Nearly all completed handovers must be soft — that is the
		// protocol's purpose.
		if s.Completed > 0 && float64(s.SoftCount)/float64(s.Completed) < 0.7 {
			t.Errorf("%v soft fraction %.2f", s.Scenario, float64(s.SoftCount)/float64(s.Completed))
		}
	}
	// CDF is monotone and scaled by the completion rate.
	cdf := series[0].CDF(200, 2000, 8)
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P < cdf[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
	if last := cdf[len(cdf)-1].P; last > series[0].CompletionRate()+1e-9 {
		t.Errorf("CDF exceeds completion rate: %v", last)
	}
}

func TestMobilityAlignmentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	opts := DefaultMobilityOpts()
	opts.Trials = 8
	rows := RunMobility(opts)
	for _, r := range rows {
		if r.AlignedFrac.Value() < 0.6 {
			t.Errorf("%v aligned fraction %.2f too low — the paper's claim fails",
				r.Scenario, r.AlignedFrac.Value())
		}
		if r.HandoverRate.Value() < 0.6 {
			t.Errorf("%v handover rate %.2f", r.Scenario, r.HandoverRate.Value())
		}
	}
}

func TestBaselineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	opts := DefaultBaselineOpts()
	opts.Trials = 8
	rows := RunBaseline(opts)
	var st, re BaselineRow
	for _, r := range rows {
		switch r.Variant {
		case SilentTracker:
			st = r
		case Reactive:
			re = r
		}
	}
	// Reactive's handovers are hard; Silent Tracker's mostly soft.
	if re.HandoverOK.Value() > 0 && re.HardRate.Value() < 0.8 {
		t.Errorf("reactive hard rate %.2f, expected ~1", re.HardRate.Value())
	}
	if st.HardRate.Value() > 0.4 {
		t.Errorf("silent tracker hard rate %.2f, expected low", st.HardRate.Value())
	}
	// Silent tracker suffers less interruption than reactive.
	if st.InterruptMs.Mean() >= re.InterruptMs.Mean() {
		t.Errorf("interruption: ST %.0f ms should beat reactive %.0f ms",
			st.InterruptMs.Mean(), re.InterruptMs.Mean())
	}
}

func TestScenarioHelpers(t *testing.T) {
	if Walk.String() != "Walk" || Rotation.String() != "Rotation" || Vehicular.String() != "Vehicular" {
		t.Error("scenario names")
	}
	if Narrow.String() != "Narrow" || Wide.String() != "Wide" || Omni.String() != "Omni" {
		t.Error("beam config names")
	}
	if Narrow.Book().Size() != 18 || Wide.Book().Size() != 6 || Omni.Book().Size() != 1 {
		t.Error("codebook sizes")
	}
	if len(AllScenarios()) != 3 {
		t.Error("AllScenarios")
	}
	if HorizonFor(Vehicular) >= HorizonFor(Walk) {
		t.Error("vehicular horizon should be shortest")
	}
}

func TestMobilityForDiffersAcrossSeeds(t *testing.T) {
	a := MobilityFor(Walk, 1).PoseAt(0)
	b := MobilityFor(Walk, 2).PoseAt(0)
	if a.Pos == b.Pos {
		t.Error("trial starts identical across seeds")
	}
	r := MobilityFor(Rotation, 3).PoseAt(0)
	if r.Pos.X < 11 || r.Pos.X > 14 {
		t.Errorf("rotation position %v outside the boundary band", r.Pos)
	}
}

func TestShuffledSeeds(t *testing.T) {
	s := ShuffledSeeds(1, 10)
	if len(s) != 10 {
		t.Fatal("wrong length")
	}
	seen := map[int64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
	s2 := ShuffledSeeds(1, 10)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("not reproducible")
		}
	}
}

func TestTableWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	rows := RunFig2a(Fig2aQuick(5))
	var buf bytes.Buffer
	WriteFig2a(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Narrow") || !strings.Contains(out, "Omni") {
		t.Errorf("fig2a table incomplete:\n%s", out)
	}
	buf.Reset()
	WriteFig2aCSV(&buf, rows)
	if !strings.HasPrefix(buf.String(), "config,dwells") {
		t.Error("fig2a CSV header")
	}

	series := RunFig2c(Fig2cQuick(4))
	buf.Reset()
	WriteFig2c(&buf, series)
	if !strings.Contains(buf.String(), "Rotation") {
		t.Error("fig2c table incomplete")
	}
	buf.Reset()
	WriteFig2cCSV(&buf, series)
	if !strings.HasPrefix(buf.String(), "scenario,latency_ms") {
		t.Error("fig2c CSV header")
	}

	buf.Reset()
	Banner(&buf, "test")
	if !strings.Contains(buf.String(), "test") {
		t.Error("banner")
	}
}

func TestEdgeWorldConstruction(t *testing.T) {
	w := EdgeWorld(Walk, Narrow, 42)
	if len(w.Cells) != 2 {
		t.Fatalf("%d cells", len(w.Cells))
	}
	if w.Tracker.ServingCell() != 1 {
		t.Error("serving cell")
	}
	// Burst offsets must not collide (staggered by construction).
	if w.Cells[1].Sched.Overlaps(w.Cells[2].Sched) {
		t.Error("cell bursts overlap; measurement interleaving impossible")
	}
	w.Run(100 * sim.Millisecond)
	if w.Engine.Fired() == 0 {
		t.Error("world inert")
	}
}

func TestPatternModelsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	rows := RunPatterns(PatternOpts{Trials: 10, Seed: 7000})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := range rows {
		r := &rows[i]
		if r.Success.Value() < 0.7 {
			t.Errorf("%s search success %.2f: protocol should not depend on the pattern model",
				r.Model, r.Success.Value())
		}
		if r.HandoverOK.Value() < 0.7 {
			t.Errorf("%s handover rate %.2f", r.Model, r.HandoverOK.Value())
		}
	}
}

func TestCodebookSweepScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial experiment")
	}
	rows := RunCodebook(CodebookOpts{Sizes: []int{6, 18, 64}, Trials: 12, Seed: 8000})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Latency (in dwells) must grow with codebook size.
	if !(rows[0].Dwells.Median() < rows[1].Dwells.Median() &&
		rows[1].Dwells.Median() < rows[2].Dwells.Median()) {
		t.Errorf("dwell medians not increasing: %v %v %v",
			rows[0].Dwells.Median(), rows[1].Dwells.Median(), rows[2].Dwells.Median())
	}
	// The 64-beam worst-case full scan is the paper's 1.28 s.
	if rows[2].FullMs != 1280 {
		t.Errorf("64-beam full scan = %v ms, want 1280", rows[2].FullMs)
	}
	// Search under mobility gets less reliable as beams narrow.
	if rows[2].Success.Value() > rows[0].Success.Value()+1e-9 &&
		rows[2].Success.Value() == 1 {
		t.Errorf("64-beam search should not beat 6-beam under mobility")
	}
	var buf bytes.Buffer
	WriteCodebook(&buf, rows)
	if !strings.Contains(buf.String(), "1280") {
		t.Error("codebook table missing the 1.28 s row")
	}
	buf.Reset()
	WritePatterns(&buf, RunPatterns(PatternOpts{Trials: 2, Seed: 1}))
	if !strings.Contains(buf.String(), "ULA") {
		t.Error("patterns table missing ULA row")
	}
}
