package scenario

import (
	"fmt"
	"math"

	"silenttracker/internal/geom"
	"silenttracker/internal/rng"
)

// MobilityKind names one of the paper's three mobility models.
type MobilityKind int

// The mobility models a fleet mixes.
const (
	WalkKind MobilityKind = iota
	RotationKind
	VehicularKind
	numKinds
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case WalkKind:
		return "walk"
	case RotationKind:
		return "rotation"
	default:
		return "vehicular"
	}
}

// Mix weighs the mobility models of a fleet. Weights are relative
// (they need not sum to 1); Counts apportions them exactly.
type Mix struct {
	Walk      float64 `json:"walk"`
	Rotation  float64 `json:"rotation"`
	Vehicular float64 `json:"vehicular"`
}

// Counts apportions n mobiles across the mix by largest remainder, so
// the realised proportions are exact — never a stochastic draw whose
// composition drifts between trials. Ties go to the lower kind index.
func (m Mix) Counts(n int) [3]int {
	w := [3]float64{m.Walk, m.Rotation, m.Vehicular}
	var total float64
	for _, x := range w {
		total += x
	}
	var out [3]int
	if total <= 0 || n <= 0 {
		out[0] = max(n, 0) // degenerate mix: everyone walks
		return out
	}
	assigned := 0
	var rem [3]float64
	for i, x := range w {
		exact := float64(n) * x / total
		out[i] = int(math.Floor(exact))
		rem[i] = exact - float64(out[i])
		assigned += out[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < 3; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
		assigned++
	}
	return out
}

// RegionKind names a spawn-region shape.
type RegionKind int

// The supported spawn regions.
const (
	RectKind RegionKind = iota
	AnnulusKind
)

// Region is where a fleet spawns. Sampling is uniform over the
// region's area.
type Region struct {
	Kind RegionKind `json:"kind"`
	// Rect bounds (RectKind).
	Min geom.Vec `json:"min,omitempty"`
	Max geom.Vec `json:"max,omitempty"`
	// Annulus parameters (AnnulusKind): Center plus inner/outer radii.
	Center geom.Vec `json:"center,omitempty"`
	R0     float64  `json:"r0,omitempty"`
	R1     float64  `json:"r1,omitempty"`
}

// RectRegion returns the axis-aligned rectangle [min, max].
func RectRegion(min, max geom.Vec) Region {
	return Region{Kind: RectKind, Min: min, Max: max}
}

// AnnulusRegion returns the annulus centred at c with radii r0 <= r1
// (r0 = 0 is a disc).
func AnnulusRegion(c geom.Vec, r0, r1 float64) Region {
	return Region{Kind: AnnulusKind, Center: c, R0: r0, R1: r1}
}

func (r Region) validate() error {
	switch r.Kind {
	case RectKind:
		if r.Max.X < r.Min.X || r.Max.Y < r.Min.Y {
			return fmt.Errorf("scenario: rect region %v..%v is inverted", r.Min, r.Max)
		}
	case AnnulusKind:
		if r.R0 < 0 || r.R1 < r.R0 {
			return fmt.Errorf("scenario: annulus radii [%g, %g] are invalid", r.R0, r.R1)
		}
	default:
		return fmt.Errorf("scenario: unknown region kind %d", int(r.Kind))
	}
	return nil
}

// Sample draws a point uniformly over the region's area.
func (r Region) Sample(src *rng.Source) geom.Vec {
	switch r.Kind {
	case AnnulusKind:
		// Uniform over area: radius via the inverse CDF of r², angle
		// uniform.
		u := src.Float64()
		rad := math.Sqrt(u*(r.R1*r.R1-r.R0*r.R0) + r.R0*r.R0)
		theta := src.Uniform(0, geom.TwoPi)
		return r.Center.Add(geom.FromPolar(rad, theta))
	default:
		return geom.V(src.Uniform(r.Min.X, r.Max.X), src.Uniform(r.Min.Y, r.Max.Y))
	}
}

// Fleet declares the mobiles of a scenario.
type Fleet struct {
	// Count is the fleet size.
	Count int `json:"count"`
	// Spawn is where mobiles start.
	Spawn Region `json:"spawn"`
	// Mix apportions mobility models across the fleet.
	Mix Mix `json:"mix"`
	// Heading is the mean travel direction (radians) for walk and
	// vehicular mobiles; HeadingJitter is the uniform half-width
	// around it. A jitter of π or more means a uniformly random
	// heading.
	Heading       float64 `json:"heading"`
	HeadingJitter float64 `json:"heading_jitter"`
	// Speed overrides the vehicular speed in m/s (0 keeps the paper's
	// 20 mph).
	Speed float64 `json:"speed,omitempty"`
}

func (f Fleet) validate() error {
	if f.Count < 1 {
		return fmt.Errorf("scenario: fleet count %d is not positive", f.Count)
	}
	if f.Mix.Walk < 0 || f.Mix.Rotation < 0 || f.Mix.Vehicular < 0 {
		return fmt.Errorf("scenario: mix weights must be non-negative, got %+v", f.Mix)
	}
	if f.Speed < 0 {
		return fmt.Errorf("scenario: fleet speed %g is negative", f.Speed)
	}
	return f.Spawn.validate()
}
