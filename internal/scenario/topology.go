package scenario

import (
	"fmt"
	"math"

	"silenttracker/internal/geom"
	"silenttracker/internal/phy"
	"silenttracker/internal/sim"
)

// TopologyKind names a cell layout family.
type TopologyKind int

// The supported layouts.
const (
	// LinearKind is a corridor: roadside cells along the x axis at
	// Spacing intervals, alternating sides of the road (offset
	// ±0.3·Spacing) and facing it, so the 120° sectors tile the
	// corridor with contiguous coverage (±0.3·Spacing·tan 60° ≈
	// ±0.52·Spacing of road per cell).
	LinearKind TopologyKind = iota
	// HexKind is a hexagonal grid of the given radius (radius 0 is one
	// cell, radius k adds k rings: 1+3k(k+1) cells), every cell facing
	// the grid centre.
	HexKind
	// RingKind places cells evenly on a circle, facing the centre —
	// the hotspot layout: coverage overlaps in the middle.
	RingKind
)

// String implements fmt.Stringer.
func (k TopologyKind) String() string {
	switch k {
	case LinearKind:
		return "linear"
	case HexKind:
		return "hex"
	default:
		return "ring"
	}
}

// Topology declares a cell layout.
type Topology struct {
	Kind TopologyKind `json:"kind"`
	// Size is the cell count (LinearKind, RingKind) or the grid radius
	// (HexKind).
	Size int `json:"size"`
	// Spacing is the inter-site distance in meters (LinearKind,
	// HexKind) or the circle radius (RingKind).
	Spacing float64 `json:"spacing"`
}

// LinearCorridor returns a corridor of n cells spaced s meters apart.
func LinearCorridor(n int, s float64) Topology {
	return Topology{Kind: LinearKind, Size: n, Spacing: s}
}

// HexGrid returns a hex grid of the given radius with inter-site
// distance s.
func HexGrid(radius int, s float64) Topology {
	return Topology{Kind: HexKind, Size: radius, Spacing: s}
}

// Ring returns n cells on a circle of radius r.
func Ring(n int, r float64) Topology {
	return Topology{Kind: RingKind, Size: n, Spacing: r}
}

func (t Topology) validate() error {
	switch t.Kind {
	case LinearKind, RingKind:
		if t.Size < 1 {
			return fmt.Errorf("scenario: %v topology needs at least 1 cell, got %d", t.Kind, t.Size)
		}
	case HexKind:
		if t.Size < 0 {
			return fmt.Errorf("scenario: hex radius %d is negative", t.Size)
		}
	default:
		return fmt.Errorf("scenario: unknown topology kind %d", int(t.Kind))
	}
	if t.Spacing <= 0 {
		return fmt.Errorf("scenario: %v topology spacing %g is not positive", t.Kind, t.Spacing)
	}
	return nil
}

// NumCells returns the closed-form cell count of the layout.
func (t Topology) NumCells() int {
	if t.Kind == HexKind {
		return 1 + 3*t.Size*(t.Size+1)
	}
	return t.Size
}

// Site is one generated base-station placement. IDs are 1-based and
// dense, in layout order.
type Site struct {
	ID          int      `json:"id"`
	Pos         geom.Vec `json:"pos"`
	Facing      float64  `json:"facing"`
	BurstOffset sim.Time `json:"burst_offset"`
}

// Sites expands the layout. Burst offsets are staggered evenly across
// the SSB sweep period so neighboring bursts interleave instead of
// colliding on the mobile's single RF chain — the same staggering the
// hand-built two-cell scenario used.
func (t Topology) Sites() []Site {
	n := t.NumCells()
	sites := make([]Site, 0, n)
	period := phy.DefaultConfig().SweepPeriod
	add := func(pos geom.Vec, facing float64) {
		i := len(sites)
		sites = append(sites, Site{
			ID:          i + 1,
			Pos:         pos,
			Facing:      facing,
			BurstOffset: period * sim.Time(i) / sim.Time(n),
		})
	}
	switch t.Kind {
	case LinearKind:
		for i := 0; i < t.Size; i++ {
			side := -1.0 // south of the road, facing north
			if i%2 == 1 {
				side = 1
			}
			add(geom.V(float64(i)*t.Spacing, side*0.3*t.Spacing), -side*math.Pi/2)
		}
	case HexKind:
		// Axial coordinates (q, r) with |q|, |r|, |q+r| <= radius,
		// spiralled out ring by ring so cell 1 is the centre.
		add(geom.V(0, 0), 0)
		for ring := 1; ring <= t.Size; ring++ {
			q, r := ring, 0
			// Walk the six edges of the ring counter-clockwise.
			dirs := [6][2]int{{-1, 1}, {-1, 0}, {0, -1}, {1, -1}, {1, 0}, {0, 1}}
			for _, d := range dirs {
				for step := 0; step < ring; step++ {
					pos := axialToPlane(q, r, t.Spacing)
					add(pos, facingToCentre(pos))
					q += d[0]
					r += d[1]
				}
			}
		}
	case RingKind:
		for i := 0; i < t.Size; i++ {
			theta := geom.TwoPi * float64(i) / float64(t.Size)
			pos := geom.FromPolar(t.Spacing, theta)
			add(pos, facingToCentre(pos))
		}
	}
	return sites
}

// axialToPlane converts hex axial coordinates to the plane with
// inter-site distance s (pointy-top orientation).
func axialToPlane(q, r int, s float64) geom.Vec {
	x := s * (float64(q) + float64(r)/2)
	y := s * (math.Sqrt(3) / 2) * float64(r)
	return geom.V(x, y)
}

// facingToCentre points a sector at the origin; a cell at the origin
// faces east by convention.
func facingToCentre(pos geom.Vec) float64 {
	if pos.X == 0 && pos.Y == 0 {
		return 0
	}
	return pos.BearingTo(geom.V(0, 0))
}
