// Package scenario is the declarative world generator: a small
// composable Spec — a cell topology, a UE fleet, and a blocker field
// — compiles into concrete multi-cell, multi-UE deployments on the
// existing world/cell/ue/mobility substrates. It is the layer every
// "imagined scenario" builds on instead of hand-rolling world setup.
//
// Determinism is the core contract. Compile(spec, seed) derives one
// independent RNG stream per generated entity with
// rng.ChildSeed-style seed scheduling: UE i's spawn point, heading,
// and every stochastic process of its world (channel fading,
// blockage, mobility jitter) are pure functions of (spec, seed, i) —
// growing a fleet never perturbs those per-entity draws, and
// trial-level -j sharding stays byte-identical at any worker count.
// The one fleet-level quantity is the mobility-kind assignment: the
// mix is apportioned exactly over Count and permuted by one fleet
// stream, so kinds (and thus trajectories) can reshuffle when Count
// changes — exact proportions and prefix-stable kinds are mutually
// exclusive, and the exact mix wins.
//
// The simulator models UEs with independent links (no inter-UE
// interference, matching the paper's single-mobile testbed), so a
// deployment compiles into one World per UE sharing the same cell
// layout; BuildUE(i) wires UE i's world on demand.
package scenario

import (
	"encoding/json"
	"fmt"

	"silenttracker/internal/sim"
)

// Spec declares one family of worlds. The zero value is not useful:
// every field participates in the compiled deployment, and experiment
// families surface the interesting ones as campaign sweep axes.
type Spec struct {
	// Name labels the family in fingerprints and diagnostics.
	Name string `json:"name"`

	// Topology places the base stations.
	Topology Topology `json:"topology"`

	// Fleet populates the world with mobiles.
	Fleet Fleet `json:"fleet"`

	// Blockers scales the blockage dynamics on every cell link.
	Blockers Blockers `json:"blockers"`

	// CellRange, if positive, gives every cell a soft coverage edge at
	// this many meters (world.CellSpec.RangeLimit) — what makes a
	// mobile genuinely leave a cell and forces handovers.
	CellRange float64 `json:"cell_range,omitempty"`

	// Horizon is how long a trial of this world runs.
	Horizon sim.Time `json:"horizon"`
}

// Blockers describes the blocker field as a density relative to the
// calibrated default: 1 keeps the default blockage event rate, 2
// doubles it (half the mean LOS interval), 0 disables blockage
// entirely. Hold times keep the calibrated mean — density models how
// often bodies cross the link, not how slowly they walk.
type Blockers struct {
	Density float64 `json:"density"`
}

// Validate reports the first structural problem of the spec, or nil.
func (s Spec) Validate() error {
	if err := s.Topology.validate(); err != nil {
		return err
	}
	if err := s.Fleet.validate(); err != nil {
		return err
	}
	if s.Blockers.Density < 0 {
		return fmt.Errorf("scenario: blocker density %g is negative", s.Blockers.Density)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("scenario: horizon %v is not positive", s.Horizon)
	}
	return nil
}

// Fingerprint returns the spec's canonical JSON — the string two
// specs must share to be the same family. Campaign Config strings
// embed it so scenario parameters that are not sweep axes still
// invalidate the cache when they change.
func (s Spec) Fingerprint() string {
	buf, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: spec marshal: %v", err))
	}
	return string(buf)
}
