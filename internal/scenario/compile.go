package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"silenttracker/internal/channel"
	"silenttracker/internal/geom"
	"silenttracker/internal/mobility"
	"silenttracker/internal/rng"
	"silenttracker/internal/ue"
	"silenttracker/internal/world"
)

// firstUEID is where generated fleet identities start; they stay well
// below ue.MaxID (the cells' temporary-ID range) for any plausible
// fleet.
const firstUEID = 101

// UE is one generated mobile: everything needed to rebuild its world
// deterministically.
type UE struct {
	Index int    `json:"index"`
	ID    uint16 `json:"id"`
	// Seed is the UE's private seed: its mobility jitter and every
	// stochastic process of its world derive from it alone.
	Seed    int64        `json:"seed"`
	Kind    MobilityKind `json:"kind"`
	Spawn   geom.Vec     `json:"spawn"`
	Heading float64      `json:"heading"`
	// Serving is the nearest site at spawn — the cell the mobile is
	// attached to when the scenario window opens.
	Serving int `json:"serving"`
}

// Deployment is a compiled world family: concrete sites and mobiles.
type Deployment struct {
	Spec  Spec   `json:"spec"`
	Seed  int64  `json:"seed"`
	Sites []Site `json:"sites"`
	UEs   []UE   `json:"ues"`
}

// Compile expands the spec under the seed. Entity seed scheduling:
// UE i draws its seed, spawn, and heading from
// ChildSeed(seed, "scenario/ue/<i>"), so those are invariant under
// Count — growing a fleet does not disturb existing entities' private
// draws. The mobility-kind assignment is the exception: it is an
// exact apportionment permuted by one fleet-level stream, so kinds
// may reshuffle when Count changes (see the package comment). Compile
// panics on an invalid spec (specs are authored in code, not parsed
// from input).
func Compile(spec Spec, seed int64) *Deployment {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	if firstUEID+spec.Fleet.Count > ue.MaxID {
		panic(fmt.Sprintf("scenario: fleet of %d would overflow the permanent UE-ID range", spec.Fleet.Count))
	}
	sites := spec.Topology.Sites()
	d := &Deployment{Spec: spec, Seed: seed, Sites: sites}

	// Exact mix counts, dealt into a kind-per-index slate, then
	// permuted by the fleet stream so kinds are interleaved across the
	// spawn region rather than blocked by index.
	counts := spec.Fleet.Mix.Counts(spec.Fleet.Count)
	kinds := make([]MobilityKind, 0, spec.Fleet.Count)
	for k, c := range counts {
		for j := 0; j < c; j++ {
			kinds = append(kinds, MobilityKind(k))
		}
	}
	fleetSrc := rng.Stream(seed, "scenario/fleet")
	fleetSrc.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	d.UEs = make([]UE, spec.Fleet.Count)
	for i := range d.UEs {
		ueSeed := rng.ChildSeed(seed, fmt.Sprintf("scenario/ue/%d", i))
		src := rng.Stream(ueSeed, "scenario/spawn")
		spawn := spec.Fleet.Spawn.Sample(src)
		heading := spec.Fleet.Heading
		if j := spec.Fleet.HeadingJitter; j >= math.Pi {
			heading = src.Uniform(0, geom.TwoPi)
		} else if j > 0 {
			heading += src.Uniform(-j, j)
		}
		d.UEs[i] = UE{
			Index:   i,
			ID:      uint16(firstUEID + i),
			Seed:    ueSeed,
			Kind:    kinds[i],
			Spawn:   spawn,
			Heading: geom.WrapAngle(heading),
			Serving: nearestSite(sites, spawn),
		}
	}
	return d
}

// nearestSite returns the ID of the site closest to p (lowest ID wins
// ties, deterministically).
func nearestSite(sites []Site, p geom.Vec) int {
	best, bestD := sites[0].ID, sites[0].Pos.Dist(p)
	for _, s := range sites[1:] {
		if d := s.Pos.Dist(p); d < bestD {
			best, bestD = s.ID, d
		}
	}
	return best
}

// Mobility returns UE i's mobility model, rebuilt from its private
// seed.
func (d *Deployment) Mobility(i int) mobility.Model {
	u := d.UEs[i]
	switch u.Kind {
	case RotationKind:
		return mobility.NewRotation(u.Spawn, u.Seed)
	case VehicularKind:
		speed := d.Spec.Fleet.Speed
		if speed == 0 {
			speed = mobility.VehicularSpeed
		}
		return mobility.NewVehicleSpeed(u.Spawn, u.Heading, speed, u.Seed)
	default:
		return mobility.NewWalk(u.Spawn, u.Heading, u.Seed)
	}
}

// BuildUE wires UE i's runnable world: every site as a cell (soft
// range edge and blocker field applied), the mobile spawned on its
// model, attached to its nearest cell, searching unconditionally —
// generated worlds exist to exercise cell edges.
func (d *Deployment) BuildUE(i int) *world.World {
	u := d.UEs[i]
	b := world.NewBuilder(u.Seed)
	b.Cfg.AlwaysSearch = true
	b.UEID = u.ID
	b.ServingCell = u.Serving
	blockLOS, blockHold, noBlock := d.blockage(b.P.Channel)
	for _, s := range d.Sites {
		b.AddCell(world.CellSpec{
			ID:            s.ID,
			Pos:           s.Pos,
			Facing:        s.Facing,
			BurstOffset:   s.BurstOffset,
			RangeLimit:    d.Spec.CellRange,
			NoBlockage:    noBlock,
			BlockMeanLOS:  blockLOS,
			BlockMeanHold: blockHold,
		})
	}
	b.Mob = d.Mobility(i)
	return b.Build()
}

// blockage maps the blocker-field density onto per-link blockage
// dynamics: density scales how often bodies cross the link, so the
// mean LOS interval shrinks as 1/density; hold times keep the
// calibrated mean. Density 0 disables blockage, 1 keeps defaults.
func (d *Deployment) blockage(p channel.Params) (meanLOS, meanHold float64, disabled bool) {
	dens := d.Spec.Blockers.Density
	if dens == 0 {
		return 0, 0, true
	}
	return p.BlockMeanLOS / dens, p.BlockMeanHold, false
}

// Fingerprint returns the deployment's canonical JSON: two compiles
// with equal fingerprints rebuild byte-identical worlds, because
// every stochastic input of a world is either in the fingerprint or
// derived from seeds that are.
func (d *Deployment) Fingerprint() []byte {
	buf, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("scenario: deployment marshal: %v", err))
	}
	return buf
}

// NumUEs returns the fleet size.
func (d *Deployment) NumUEs() int { return len(d.UEs) }
