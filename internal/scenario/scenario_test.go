package scenario

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"silenttracker/internal/geom"
	"silenttracker/internal/rng"
	"silenttracker/internal/sim"
)

func testSpec(count int) Spec {
	return Spec{
		Name:     "test",
		Topology: HexGrid(1, 20),
		Fleet: Fleet{
			Count:         count,
			Spawn:         AnnulusRegion(geom.V(0, 0), 4, 16),
			Mix:           Mix{Walk: 0.5, Rotation: 0.25, Vehicular: 0.25},
			HeadingJitter: geom.TwoPi,
		},
		Blockers:  Blockers{Density: 1},
		CellRange: 18,
		Horizon:   2 * sim.Second,
	}
}

// TestCompileDeterministic: same spec + seed ⇒ byte-identical
// deployment, and the built worlds replay identically.
func TestCompileDeterministic(t *testing.T) {
	a := Compile(testSpec(12), 42)
	b := Compile(testSpec(12), 42)
	if !bytes.Equal(a.Fingerprint(), b.Fingerprint()) {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if bytes.Equal(a.Fingerprint(), Compile(testSpec(12), 43).Fingerprint()) {
		t.Fatal("different seeds produced identical deployments")
	}

	// The compiled world is byte-identical in behaviour, not just in
	// description: run the same UE twice and compare protocol state.
	w1 := a.BuildUE(3)
	w2 := b.BuildUE(3)
	w1.Run(2 * sim.Second)
	w2.Run(2 * sim.Second)
	if w1.Tracker.HandoversDone != w2.Tracker.HandoversDone ||
		w1.ServingListens != w2.ServingListens ||
		w1.NeighborListens != w2.NeighborListens ||
		w1.Device.Pose(2*sim.Second) != w2.Device.Pose(2*sim.Second) {
		t.Fatalf("replays diverged: %+v vs %+v", w1.Tracker, w2.Tracker)
	}
}

// TestFleetPrefixStable: growing the fleet appends UEs without
// disturbing existing ones — per-entity seed scheduling at work.
func TestFleetPrefixStable(t *testing.T) {
	small := Compile(testSpec(8), 7)
	large := Compile(testSpec(24), 7)
	for i := range small.UEs {
		su, lu := small.UEs[i], large.UEs[i]
		// Kind assignment is a fleet-level permutation (it must keep
		// mix proportions exact), so it may differ; everything derived
		// from the per-UE stream must not.
		if su.Seed != lu.Seed || su.Spawn != lu.Spawn || su.Heading != lu.Heading || su.ID != lu.ID {
			t.Fatalf("UE %d changed when the fleet grew:\n%+v\n%+v", i, su, lu)
		}
	}
}

// TestMixCountsExact: largest-remainder apportionment realises the
// mix exactly.
func TestMixCountsExact(t *testing.T) {
	cases := []struct {
		mix  Mix
		n    int
		want [3]int
	}{
		{Mix{Walk: 0.5, Rotation: 0.25, Vehicular: 0.25}, 8, [3]int{4, 2, 2}},
		{Mix{Walk: 0.6, Rotation: 0.2, Vehicular: 0.2}, 20, [3]int{12, 4, 4}},
		{Mix{Walk: 0.75, Rotation: 0.25}, 8, [3]int{6, 2, 0}},
		{Mix{Walk: 1, Rotation: 1, Vehicular: 1}, 10, [3]int{4, 3, 3}},
		{Mix{Vehicular: 1}, 10, [3]int{0, 0, 10}},
		{Mix{}, 5, [3]int{5, 0, 0}}, // degenerate: everyone walks
	}
	for _, c := range cases {
		if got := c.mix.Counts(c.n); got != c.want {
			t.Errorf("Counts(%+v, %d) = %v, want %v", c.mix, c.n, got, c.want)
		}
	}
	// The compiled fleet realises exactly those counts.
	d := Compile(testSpec(20), 99)
	var got [3]int
	for _, u := range d.UEs {
		got[u.Kind]++
	}
	want := testSpec(20).Fleet.Mix.Counts(20)
	if got != want {
		t.Errorf("compiled kinds %v, want %v", got, want)
	}
}

// TestTopologyClosedForm: cell counts and positions match the
// closed-form layout definitions.
func TestTopologyClosedForm(t *testing.T) {
	for k := 0; k <= 3; k++ {
		want := 1 + 3*k*(k+1)
		if got := HexGrid(k, 20).NumCells(); got != want {
			t.Errorf("hex radius %d: NumCells = %d, want %d", k, got, want)
		}
		if got := len(HexGrid(k, 20).Sites()); got != want {
			t.Errorf("hex radius %d: len(Sites) = %d, want %d", k, got, want)
		}
	}

	// Hex: every non-centre site is a multiple of the spacing from the
	// centre along a lattice direction; ring-1 sites are exactly one
	// spacing away.
	const s = 20.0
	hex := HexGrid(1, s).Sites()
	if hex[0].Pos != geom.V(0, 0) || hex[0].Facing != 0 {
		t.Errorf("hex centre = %+v, want origin facing east", hex[0])
	}
	for _, site := range hex[1:] {
		if d := site.Pos.Len(); math.Abs(d-s) > 1e-9 {
			t.Errorf("hex ring-1 site %d at distance %g, want %g", site.ID, d, s)
		}
		if got := geom.AngleDist(site.Facing, site.Pos.BearingTo(geom.V(0, 0))); got > 1e-9 {
			t.Errorf("hex site %d does not face the centre", site.ID)
		}
	}

	// Linear: x = i*spacing, alternating roadside offsets, each cell
	// facing the road.
	lin := LinearCorridor(4, 30).Sites()
	for i, site := range lin {
		side := -1.0
		if i%2 == 1 {
			side = 1
		}
		if site.Pos != geom.V(float64(i)*30, side*9) {
			t.Errorf("linear site %d at %v", i, site.Pos)
		}
		if site.Facing != -side*math.Pi/2 {
			t.Errorf("linear site %d facing %g, want %g", i, site.Facing, -side*math.Pi/2)
		}
	}

	// Ring: on the circle, evenly spaced, facing the centre.
	ring := Ring(6, 14).Sites()
	if len(ring) != 6 {
		t.Fatalf("ring: %d sites", len(ring))
	}
	for i, site := range ring {
		if d := site.Pos.Len(); math.Abs(d-14) > 1e-9 {
			t.Errorf("ring site %d at radius %g", i, d)
		}
		wantTheta := geom.TwoPi * float64(i) / 6
		if got := geom.AngleDist(site.Pos.Heading(), geom.WrapAngle(wantTheta)); got > 1e-9 {
			t.Errorf("ring site %d at angle %g, want %g", i, site.Pos.Heading(), wantTheta)
		}
		if got := geom.AngleDist(site.Facing, site.Pos.BearingTo(geom.V(0, 0))); got > 1e-9 {
			t.Errorf("ring site %d does not face the centre", i)
		}
	}

	// Burst offsets are staggered strictly inside one sweep period.
	for i, site := range ring {
		if site.BurstOffset < 0 || (i > 0 && site.BurstOffset <= ring[i-1].BurstOffset) {
			t.Errorf("burst offsets not strictly staggered: %v", ring)
		}
	}
}

// TestServingIsNearest: every UE attaches to its closest site.
func TestServingIsNearest(t *testing.T) {
	d := Compile(testSpec(16), 5)
	for _, u := range d.UEs {
		for _, site := range d.Sites {
			served := siteByID(t, d, u.Serving)
			if site.Pos.Dist(u.Spawn) < served.Pos.Dist(u.Spawn)-1e-12 {
				t.Errorf("UE %d serving %d but site %d is closer", u.Index, u.Serving, site.ID)
			}
		}
	}
}

func siteByID(t *testing.T, d *Deployment, id int) Site {
	t.Helper()
	for _, s := range d.Sites {
		if s.ID == id {
			return s
		}
	}
	t.Fatalf("no site %d", id)
	return Site{}
}

// TestSpawnInsideRegion: sampled spawns respect the region bounds.
func TestSpawnInsideRegion(t *testing.T) {
	spec := testSpec(32)
	d := Compile(spec, 11)
	for _, u := range d.UEs {
		r := u.Spawn.Len()
		if r < 4-1e-9 || r > 16+1e-9 {
			t.Errorf("UE %d spawned at radius %g, outside [4, 16]", u.Index, r)
		}
	}
	rect := RectRegion(geom.V(-3, 1), geom.V(5, 2))
	src := rng.Stream(1, "test")
	for i := 0; i < 100; i++ {
		p := rect.Sample(src)
		if p.X < -3 || p.X > 5 || p.Y < 1 || p.Y > 2 {
			t.Fatalf("rect sample %v outside bounds", p)
		}
	}
}

// TestValidate rejects malformed specs.
func TestValidate(t *testing.T) {
	bad := []Spec{
		{},
		func() Spec { s := testSpec(4); s.Fleet.Count = 0; return s }(),
		func() Spec { s := testSpec(4); s.Topology.Spacing = 0; return s }(),
		func() Spec { s := testSpec(4); s.Horizon = 0; return s }(),
		func() Spec { s := testSpec(4); s.Blockers.Density = -1; return s }(),
		func() Spec { s := testSpec(4); s.Fleet.Mix.Walk = -0.1; return s }(),
		func() Spec { s := testSpec(4); s.Fleet.Spawn.R1 = 1; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	if err := testSpec(4).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestBlockerFieldMapping: density scales the blockage event rate and
// density 0 disables blockage outright.
func TestBlockerFieldMapping(t *testing.T) {
	spec := testSpec(2)
	spec.Blockers.Density = 4
	d := Compile(spec, 1)
	w := d.BuildUE(0)
	los, hold, off := d.blockage(w.P.Channel)
	if off || math.Abs(los-w.P.Channel.BlockMeanLOS/4) > 1e-12 || hold != w.P.Channel.BlockMeanHold {
		t.Errorf("density 4: got (%g, %g, %v)", los, hold, off)
	}
	spec.Blockers.Density = 0
	if _, _, off := Compile(spec, 1).blockage(w.P.Channel); !off {
		t.Error("density 0 did not disable blockage")
	}
}

// TestUEIDsDistinct: generated mobiles carry distinct permanent IDs
// below the cells' temporary range.
func TestUEIDsDistinct(t *testing.T) {
	d := Compile(testSpec(40), 3)
	seen := map[uint16]bool{}
	for _, u := range d.UEs {
		if seen[u.ID] {
			t.Fatalf("duplicate UE ID %d", u.ID)
		}
		seen[u.ID] = true
		if u.ID >= 0x8000 {
			t.Fatalf("UE ID %#x in the temporary range", u.ID)
		}
	}
	for i := range d.UEs {
		if d.UEs[i].Seed == d.UEs[(i+1)%len(d.UEs)].Seed {
			t.Fatalf("adjacent UEs share a seed")
		}
	}
}

// TestChildSeedMatchesStream: the exported seed-scheduling primitive
// agrees with Stream's derivation, so entity streams rebuilt from a
// ChildSeed are the streams Stream would have produced.
func TestChildSeedMatchesStream(t *testing.T) {
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("scenario/ue/%d", i)
		a := rng.Stream(17, name).Float64()
		b := rng.New(rng.ChildSeed(17, name)).Float64()
		if a != b {
			t.Fatalf("ChildSeed disagrees with Stream for %q", name)
		}
	}
}
