module silenttracker

go 1.24
